(* ------------------------------------------------------------------ *)
(* RLOGIN vs X11 (Section III)                                          *)

type poisson_triple = {
  rlogin : Stest.Poisson_check.verdict;
  x11_connections : Stest.Poisson_check.verdict;
  x11_sessions : Stest.Poisson_check.verdict;
}

let rlogin_x11_data () =
  let duration = 2. *. 86400. in
  let rates p = Trace.Diurnal.rates_per_hour Trace.Diurnal.telnet ~per_day:p in
  let rng = Prng.Rng.create 8001 in
  let rlogin_times =
    Traffic.Protocol_models.rlogin ~rates_per_hour:(rates 2000.) ~duration
      (Prng.Rng.split rng)
  in
  let x11 =
    Traffic.Protocol_models.x11_sessions ~rates_per_hour:(rates 1500.)
      ~duration (Prng.Rng.split rng)
  in
  let x11_conns =
    Traffic.Arrival.merge
      (List.map (fun s -> s.Traffic.Protocol_models.x11_conns) x11)
  in
  let x11_starts =
    Array.of_list (List.map (fun s -> s.Traffic.Protocol_models.x11_start) x11)
  in
  let check times =
    Stest.Poisson_check.check ~interval:3600. ~duration times
  in
  {
    rlogin = check rlogin_times;
    x11_connections = check x11_conns;
    x11_sessions = check x11_starts;
  }

let rlogin_x11 ctx =
  let fmt = Engine.Task.formatter ctx in
  Report.heading fmt "In text (S3): RLOGIN is Poisson; X11 connections are not";
  let d = rlogin_x11_data () in
  let row label (v : Stest.Poisson_check.verdict) =
    [
      label;
      Printf.sprintf "%.0f%%" v.exp_pass_rate;
      Printf.sprintf "%.0f%%" v.indep_pass_rate;
      (if v.poisson then "POISSON" else "not-poisson");
    ]
  in
  Report.table fmt
    ~headers:[ "arrivals"; "exp pass"; "indep pass"; "verdict" ]
    [
      row "RLOGIN connections" d.rlogin;
      row "X11 connections" d.x11_connections;
      row "X11 sessions" d.x11_sessions;
    ]

(* ------------------------------------------------------------------ *)
(* Exponential fit errors (Section IV)                                  *)

type expfit_row = {
  label : string;
  below_8ms : float;
  above_1s : float;
  above_10s : float;
}

let exp_fit_errors_data () =
  let t = Tcplib.Telnet.interarrival in
  let geo =
    (* Geometric mean of the synthetic Tcplib table via its quantiles. *)
    let n = 2000 in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let u = (float_of_int i +. 0.5) /. float_of_int n in
      acc := !acc +. log (Dist.Empirical.quantile t u)
    done;
    exp (!acc /. float_of_int n)
  in
  let fit1 = Dist.Exponential.fit_geometric_mean geo in
  let fit2 = Dist.Exponential.create ~mean:(Dist.Empirical.mean t) in
  [
    {
      label = "tcplib";
      below_8ms = Dist.Empirical.cdf t 0.008;
      above_1s = 1. -. Dist.Empirical.cdf t 1.0;
      above_10s = 1. -. Dist.Empirical.cdf t 10.0;
    };
    {
      label = "exp fit#1 (geometric)";
      below_8ms = Dist.Exponential.cdf fit1 0.008;
      above_1s = Dist.Exponential.survival fit1 1.0;
      above_10s = Dist.Exponential.survival fit1 10.0;
    };
    {
      label = "exp fit#2 (arithmetic)";
      below_8ms = Dist.Exponential.cdf fit2 0.008;
      above_1s = Dist.Exponential.survival fit2 1.0;
      above_10s = Dist.Exponential.survival fit2 10.0;
    };
  ]

let exp_fit_errors ctx =
  let fmt = Engine.Task.formatter ctx in
  Report.heading fmt "In text (S4): exponential fits mangle the quantiles";
  let rows =
    List.map
      (fun r ->
        [
          r.label;
          Printf.sprintf "%.2f%%" (100. *. r.below_8ms);
          Printf.sprintf "%.1f%%" (100. *. r.above_1s);
          Printf.sprintf "%.3f%%" (100. *. r.above_10s);
        ])
      (exp_fit_errors_data ())
  in
  Report.table fmt
    ~headers:[ "distribution"; "P[X<8ms]"; "P[X>1s]"; "P[X>10s]" ]
    rows;
  Format.fprintf fmt
    "(the heavy upper tail is what no exponential fit can carry: see P[X>10s])@."

(* ------------------------------------------------------------------ *)
(* 100 multiplexed TELNET connections (Section IV)                      *)

type multiplex_result = {
  tcplib_mean : float;
  tcplib_variance : float;
  exp_mean : float;
  exp_variance : float;
}

let multiplex_counts sample seed =
  let rng = Prng.Rng.create seed in
  let duration = 600. in
  let streams =
    List.init 100 (fun _ ->
        Traffic.Renewal.generate ~sample ~duration (Prng.Rng.split rng))
  in
  let all = Traffic.Arrival.merge streams in
  Timeseries.Counts.of_events ~bin:1.0 ~t_end:duration all

let multiplex100_data () =
  let e = Dist.Exponential.create ~mean:Tcplib.Telnet.mean_interarrival in
  let tc = multiplex_counts Tcplib.Telnet.sample_interarrival 9001 in
  let ec = multiplex_counts (Dist.Exponential.sample e) 9002 in
  {
    tcplib_mean = Stats.Descriptive.mean tc;
    tcplib_variance = Stats.Descriptive.variance tc;
    exp_mean = Stats.Descriptive.mean ec;
    exp_variance = Stats.Descriptive.variance ec;
  }

let multiplex100 ctx =
  let fmt = Engine.Task.formatter ctx in
  Report.heading fmt
    "In text (S4): 100 multiplexed TELNET connections, 1 s counts";
  let d = multiplex100_data () in
  Report.table fmt
    ~headers:[ "interarrivals"; "mean"; "variance" ]
    [
      [ "tcplib"; Report.float_cell d.tcplib_mean;
        Report.float_cell d.tcplib_variance ];
      [ "exponential"; Report.float_cell d.exp_mean;
        Report.float_cell d.exp_variance ];
    ];
  Format.fprintf fmt "(paper: means ~92, variances 240 vs 97)@."

(* ------------------------------------------------------------------ *)
(* Queueing delay (Section IV)                                          *)

type queueing_result = {
  utilization : float;
  tcplib_stats : Queueing.Fifo.stats;
  exp_stats : Queueing.Fifo.stats;
}

let queueing_delay_data () =
  let e = Dist.Exponential.create ~mean:Tcplib.Telnet.mean_interarrival in
  let target_util = 0.8 in
  let run sample seed =
    let rng = Prng.Rng.create seed in
    let duration = 600. in
    let streams =
      List.init 100 (fun _ ->
          Traffic.Renewal.generate ~sample ~duration (Prng.Rng.split rng))
    in
    let arrivals = Traffic.Arrival.merge streams in
    let rate = float_of_int (Array.length arrivals) /. duration in
    Queueing.Fifo.simulate_const ~arrivals ~service_time:(target_util /. rate)
      ()
  in
  {
    utilization = target_util;
    tcplib_stats = run Tcplib.Telnet.sample_interarrival 9101;
    exp_stats = run (Dist.Exponential.sample e) 9102;
  }

let queueing_delay ctx =
  let fmt = Engine.Task.formatter ctx in
  Report.heading fmt
    "In text (S4): FIFO queueing delay, Tcplib vs exponential arrivals";
  let d = queueing_delay_data () in
  Report.kv fmt "target utilization" "%.2f" d.utilization;
  let row label (s : Queueing.Fifo.stats) =
    [
      label;
      string_of_int s.n;
      Printf.sprintf "%.4f" s.mean_wait;
      Printf.sprintf "%.4f" s.p99_wait;
      Printf.sprintf "%.4f" s.max_wait;
    ]
  in
  Report.table fmt
    ~headers:[ "arrivals"; "pkts"; "mean wait"; "p99 wait"; "max wait" ]
    [ row "tcplib" d.tcplib_stats; row "exponential" d.exp_stats ];
  Report.kv fmt "mean-wait ratio tcplib/exp" "%.2f"
    (d.tcplib_stats.mean_wait /. Float.max 1e-12 d.exp_stats.mean_wait)

(* ------------------------------------------------------------------ *)
(* Burst tails (Section VI)                                             *)

type burst_tail_result = {
  cutoff : float;
  n_bursts : int;
  hill_shape : float;
  share_top05 : float;
  share_top2 : float;
  exp_share_top05 : float;
}

let burst_tail_data () =
  let trace = Cache.connection_trace "LBL-6" in
  let conns = Trace.Record.filter_protocol trace Trace.Record.Ftpdata in
  List.map
    (fun cutoff ->
      let bursts = Trace.Bursts.group ~cutoff conns in
      let sizes = Trace.Bursts.sizes bursts in
      let n = Array.length sizes in
      let k = Int.max 2 (n / 20) in
      (* The top 0.5% of an exponential sample holds q (1 - ln q) of the
         mass: ~3.1% for q = 0.005, regardless of the mean. *)
      let q = 0.005 in
      {
        cutoff;
        n_bursts = n;
        hill_shape = Stats.Fit.hill sizes ~k;
        share_top05 = Stats.Fit.tail_mass sizes ~top_fraction:0.005;
        share_top2 = Stats.Fit.tail_mass sizes ~top_fraction:0.02;
        exp_share_top05 = q *. (1. -. log q);
      })
    [ 4.0; 2.0 ]

let burst_tail ctx =
  let fmt = Engine.Task.formatter ctx in
  Report.heading fmt "In text (S6): FTPDATA burst-size tail (LBL-6)";
  let rows =
    List.map
      (fun r ->
        [
          Printf.sprintf "%.0f s" r.cutoff;
          string_of_int r.n_bursts;
          Printf.sprintf "%.2f" r.hill_shape;
          Printf.sprintf "%.0f%%" (100. *. r.share_top05);
          Printf.sprintf "%.0f%%" (100. *. r.share_top2);
          Printf.sprintf "%.1f%%" (100. *. r.exp_share_top05);
        ])
      (burst_tail_data ())
  in
  Report.table fmt
    ~headers:
      [ "cutoff"; "bursts"; "Hill beta"; "top 0.5%"; "top 2%"; "exp top 0.5%" ]
    rows;
  Format.fprintf fmt
    "(paper: beta in [0.9, 1.4]; top 0.5%% holds 30-60%% of bytes; 2 s cutoff ~ same)@."

(* ------------------------------------------------------------------ *)
(* Huge-burst arrivals (Section VI)                                     *)

let huge_burst_data () =
  (* A longer LBL-6 run: the top 0.5% is a thin slice, and the paper had
     199 upper-tail bursts from 30 days; six days gives us ~90. *)
  let spec =
    match Trace.Dataset.find "LBL-6" with
    | Some s -> s
    | None -> assert false
  in
  let trace = Trace.Dataset.generate ~days:6. spec in
  let conns = Trace.Record.filter_protocol trace Trace.Record.Ftpdata in
  let bursts = Trace.Bursts.group conns in
  let sizes = Trace.Bursts.sizes bursts in
  let n = Array.length sizes in
  let k = Int.max 5 (int_of_float (0.005 *. float_of_int n)) in
  (* Interarrivals in burst-index space (removes diurnal rate effects, as
     the paper does). *)
  let sorted = Array.copy sizes in
  Array.sort (fun a b -> compare b a) sorted;
  let threshold = sorted.(k - 1) in
  let indices = ref [] in
  List.iteri
    (fun i (b : Trace.Bursts.burst) ->
      if b.burst_bytes >= threshold then indices := float_of_int i :: !indices)
    bursts;
  let idx = Array.of_list (List.rev !indices) in
  let gaps = Stats.Descriptive.diffs idx in
  Stest.Anderson_darling.test_exponential ~level:0.05 gaps

let huge_burst_arrivals ctx =
  let fmt = Engine.Task.formatter ctx in
  Report.heading fmt
    "In text (S6): upper-0.5%-tail burst arrivals vs exponential";
  let v = huge_burst_data () in
  Report.kv fmt "A2 (modified)" "%.3f" v.a2_modified;
  Report.kv fmt "5% critical value" "%.3f"
    (Stest.Anderson_darling.critical_exponential 0.05);
  Report.kv fmt "exponential interarrivals?" "%s"
    (if v.pass then "pass (unexpected)" else "REJECTED (matches paper)")

(* ------------------------------------------------------------------ *)
(* M/G/inf (Appendices D and E)                                         *)

type mg_inf_result = {
  service : string;
  theoretical_h : float option;
  vt_h : float;
  whittle_h : float;
  beran_consistent : bool;
}

let mg_inf_data () =
  let n = 65536 in
  let run label theoretical service seed =
    let rng = Prng.Rng.create seed in
    let counts = Traffic.Mg_inf.count_process ~rate:5. ~service ~dt:1. ~n rng in
    (* Aggregate by 16 before estimating: the mean service time spans
       several samples, and that short-range structure would otherwise
       dominate Whittle's fit (the distortion Section VII-D mentions). *)
    let coarse = Timeseries.Counts.aggregate counts 16 in
    let vt = Lrd.Hurst.variance_time coarse in
    let wh = Lrd.Whittle.estimate coarse in
    let beran = Lrd.Beran.test ~h:wh.Lrd.Whittle.h coarse in
    {
      service = label;
      theoretical_h = theoretical;
      vt_h = vt.Lrd.Hurst.h;
      whittle_h = wh.Lrd.Whittle.h;
      beran_consistent = beran.Lrd.Beran.consistent;
    }
  in
  let beta = 1.4 in
  let pareto = Dist.Pareto.create ~location:1.0 ~shape:beta in
  (* Log-normal with the same mean service time (3.5 s). *)
  let sigma = 1.0 in
  let mu = log 3.5 -. (sigma *. sigma /. 2.) in
  let logn = Dist.Lognormal.create ~mu ~sigma in
  [
    run "Pareto beta=1.4"
      (Some (Traffic.Mg_inf.hurst_pareto ~beta))
      (Dist.Pareto.sample pareto) 9301;
    run "log-normal (same mean)" None (Dist.Lognormal.sample logn) 9302;
  ]

let mg_inf ctx =
  let fmt = Engine.Task.formatter ctx in
  Report.heading fmt "Appendix D/E: M/G/inf count process";
  let rows =
    List.map
      (fun r ->
        [
          r.service;
          (match r.theoretical_h with
          | Some h -> Printf.sprintf "%.2f" h
          | None -> "~0.5 (not LRD)");
          Printf.sprintf "%.3f" r.vt_h;
          Printf.sprintf "%.3f" r.whittle_h;
          (if r.beran_consistent then "fGn ok" else "not fGn");
        ])
      (mg_inf_data ())
  in
  Report.table fmt
    ~headers:[ "service times"; "theory H"; "H (var-time)"; "H (Whittle)"; "Beran" ]
    rows

(* ------------------------------------------------------------------ *)
(* Pareto properties (Appendix B)                                       *)

let pareto_properties ctx =
  let fmt = Engine.Task.formatter ctx in
  Report.heading fmt "Appendix B: Pareto distribution properties";
  let p = Dist.Pareto.create ~location:1.0 ~shape:1.5 in
  (* Truncation invariance: P[X > y | X > x0] = survival of
     Pareto(x0, beta) at y. *)
  let x0 = 5.0 in
  let truncated = Dist.Pareto.truncate_below p x0 in
  let rows =
    List.map
      (fun y ->
        let conditional = Dist.Pareto.survival p y /. Dist.Pareto.survival p x0 in
        [
          Printf.sprintf "%.0f" y;
          Printf.sprintf "%.5f" conditional;
          Printf.sprintf "%.5f" (Dist.Pareto.survival truncated y);
        ])
      [ 5.; 10.; 20.; 50.; 200. ]
  in
  Report.table fmt
    ~headers:[ "y"; "P[X>y | X>5]"; "Pareto(5,beta) survival" ]
    rows;
  Format.fprintf fmt "@.Conditional mean exceedance (linear in x, slope 1/(beta-1)=2):@.";
  let rng = Prng.Rng.create 777 in
  let samples = Array.init 200_000 (fun _ -> Dist.Pareto.sample p rng) in
  let rows =
    List.map
      (fun x ->
        [
          Printf.sprintf "%.0f" x;
          Printf.sprintf "%.2f" (Dist.Pareto.cmex p x);
          Printf.sprintf "%.2f" (Stats.Fit.cmex samples x);
        ])
      [ 1.; 2.; 4.; 8. ]
  in
  Report.table fmt ~headers:[ "x"; "analytic CMEX"; "empirical CMEX" ] rows

(* ------------------------------------------------------------------ *)
(* Burst/lull scaling (Appendix C)                                      *)

type scaling_row = {
  beta : float;
  bin_width : float;
  mean_burst_bins : float;
  mean_lull_bins : float;
  predicted_burst_bins : float;
}

let burst_lull_data () =
  let cases =
    [
      (2.0, [ 2.; 8.; 32. ]);
      (1.0, [ 1e2; 1e4; 1e6 ]);
      (0.5, [ 1e2; 1e6; 1e10 ]);
    ]
  in
  List.concat_map
    (fun (beta, bins) ->
      List.map
        (fun bin_width ->
          let counts =
            Lrd.Pareto_count.count_process ~beta ~a:1.0 ~bin:bin_width
              ~bins:500
              (Prng.Rng.create (int_of_float (beta *. 1000.) + int_of_float (log10 bin_width)))
          in
          let s = Lrd.Pareto_count.run_stats counts in
          {
            beta;
            bin_width;
            mean_burst_bins = s.Lrd.Pareto_count.mean_burst;
            mean_lull_bins = s.Lrd.Pareto_count.mean_lull;
            predicted_burst_bins =
              Lrd.Pareto_count.expected_burst_bins ~beta ~a:1.0 ~b:bin_width;
          })
        bins)
    cases

let burst_lull ctx =
  let fmt = Engine.Task.formatter ctx in
  Report.heading fmt "Appendix C: burst/lull scaling of the Pareto count process";
  let rows =
    List.map
      (fun r ->
        [
          Printf.sprintf "%.1f" r.beta;
          Printf.sprintf "%.0e" r.bin_width;
          Printf.sprintf "%.2f" r.mean_burst_bins;
          Printf.sprintf "%.2f" r.mean_lull_bins;
          Printf.sprintf "%.2f" r.predicted_burst_bins;
        ])
      (burst_lull_data ())
  in
  Report.table fmt
    ~headers:[ "beta"; "bin b"; "mean burst"; "mean lull"; "predicted burst" ]
    rows;
  Format.fprintf fmt
    "(beta=2: bursts ~ b; beta=1: ~ ln b; beta=1/2: constant; lulls invariant)@."

(* ------------------------------------------------------------------ *)
(* Priority starvation (Section VIII)                                   *)

type priority_result = {
  high_kind : string;
  low_mean_wait : float;
  low_max_wait : float;
  longest_low_gap : float;
}

let priority_starvation_data () =
  let t = Cache.packet_trace "LBL-PKT-2" in
  let high_lrd = t.Trace.Packet_dataset.ftpdata_packets in
  let duration = t.Trace.Packet_dataset.spec.duration in
  let rate = float_of_int (Array.length high_lrd) /. duration in
  let high_poisson =
    Traffic.Poisson_proc.homogeneous ~rate ~duration (Prng.Rng.create 9401)
  in
  let low =
    Traffic.Poisson_proc.homogeneous ~rate:(rate /. 4.) ~duration
      (Prng.Rng.create 9402)
  in
  (* Service sized for ~80% total utilisation. *)
  let service = 0.8 /. (rate +. (rate /. 4.)) in
  let run label high =
    let s =
      Queueing.Priority.simulate ~high ~low ~service_high:service
        ~service_low:service
    in
    {
      high_kind = label;
      low_mean_wait = s.Queueing.Priority.low.mean_wait;
      low_max_wait = s.Queueing.Priority.low.max_wait;
      longest_low_gap = s.Queueing.Priority.longest_low_gap;
    }
  in
  [ run "LRD FTPDATA" high_lrd; run "Poisson (same rate)" high_poisson ]

let priority_starvation ctx =
  let fmt = Engine.Task.formatter ctx in
  Report.heading fmt "Section VIII: priority starvation of low class";
  let rows =
    List.map
      (fun r ->
        [
          r.high_kind;
          Printf.sprintf "%.4f" r.low_mean_wait;
          Printf.sprintf "%.2f" r.low_max_wait;
          Printf.sprintf "%.2f" r.longest_low_gap;
        ])
      (priority_starvation_data ())
  in
  Report.table fmt
    ~headers:
      [ "high-priority traffic"; "low mean wait"; "low max wait"; "longest gap" ]
    rows

(* ------------------------------------------------------------------ *)
(* fGn validation                                                       *)

type fgn_row = {
  h_true : float;
  h_vt : float;
  h_rs : float;
  h_pgram : float;
  h_whittle : float;
  beran_p : float;
}

let median xs =
  let a = Array.of_list xs in
  Stats.Descriptive.median a

let fgn_validate_data () =
  (* Medians over five seeds: single draws of any estimator are noisy
     (and Beran's 5%-level test rejects ~1 in 20 true nulls by design). *)
  let seeds = [ 1; 2; 3; 4; 5 ] in
  List.map
    (fun h ->
      let runs =
        List.map
          (fun seed ->
            let rng = Prng.Rng.create ((seed * 131) + int_of_float (h *. 100.)) in
            let xs = Lrd.Fgn.generate ~h ~n:8192 rng in
            let wh = Lrd.Whittle.estimate xs in
            ( (Lrd.Hurst.variance_time xs).Lrd.Hurst.h,
              (Lrd.Hurst.rescaled_range xs).Lrd.Hurst.h,
              (Lrd.Hurst.periodogram_regression xs).Lrd.Hurst.h,
              wh.Lrd.Whittle.h,
              (Lrd.Beran.test ~h:wh.Lrd.Whittle.h xs).Lrd.Beran.p_value ))
          seeds
      in
      {
        h_true = h;
        h_vt = median (List.map (fun (a, _, _, _, _) -> a) runs);
        h_rs = median (List.map (fun (_, b, _, _, _) -> b) runs);
        h_pgram = median (List.map (fun (_, _, c, _, _) -> c) runs);
        h_whittle = median (List.map (fun (_, _, _, d, _) -> d) runs);
        beran_p = median (List.map (fun (_, _, _, _, e) -> e) runs);
      })
    [ 0.5; 0.6; 0.75; 0.9 ]

let fgn_validate ctx =
  let fmt = Engine.Task.formatter ctx in
  Report.heading fmt "Toolkit validation: Hurst estimators on exact fGn";
  let rows =
    List.map
      (fun r ->
        [
          Printf.sprintf "%.2f" r.h_true;
          Printf.sprintf "%.3f" r.h_vt;
          Printf.sprintf "%.3f" r.h_rs;
          Printf.sprintf "%.3f" r.h_pgram;
          Printf.sprintf "%.3f" r.h_whittle;
          Printf.sprintf "%.3f" r.beran_p;
        ])
      (fgn_validate_data ())
  in
  Report.table fmt
    ~headers:[ "true H"; "var-time"; "R/S"; "periodogram"; "Whittle"; "Beran p" ]
    rows

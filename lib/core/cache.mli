(** Memoised synthetic datasets: several figures read the same trace, so
    each catalog entry is generated at most once per process. Generation
    is deterministic (seeded), so caching cannot change any result.

    Domain-safe: a mutex guards the tables, and a per-key in-flight
    marker means two domains asking for the same trace concurrently
    still generate it exactly once (the second waits for the first). *)

val connection_trace : string -> Trace.Record.t
(** By catalog name (e.g. "LBL-1"); raises [Not_found] for unknown
    names. *)

val packet_trace : string -> Trace.Packet_dataset.t
(** By catalog name (e.g. "LBL-PKT-2"). *)

val generation_count : unit -> int
(** Number of actual dataset generations so far in this process
    (monotonic; cache hits and waiters do not count). For tests. *)

val clear : unit -> unit
(** Drop every cached dataset. Concurrent in-flight generations still
    complete and re-insert their own result. *)

(** Memoised shared analysis products: several figures read the same
    trace (or the same derived dataset), so each is generated at most
    once per process. Generation is deterministic (seeded), so caching
    cannot change any result.

    Domain-safe: a mutex guards the tables, and a per-key in-flight
    marker means two domains asking for the same product concurrently
    still generate it exactly once (the second waits for the first). *)

val connection_trace : string -> Trace.Record.t
(** By catalog name (e.g. "LBL-1"); raises [Not_found] for unknown
    names. *)

val packet_trace : string -> Trace.Packet_dataset.t
(** By catalog name (e.g. "LBL-PKT-2"). *)

val memo : string -> (unit -> 'a) -> 'a
(** [memo key thunk] returns the cached value for [key], running [thunk]
    at most once per process to produce it (concurrent callers wait; if
    the thunk raises, the slot is released and a later caller retries).

    The table is untyped inside, so a given [key] must always be used at
    a single result type — namespace keys by the call site that owns
    them (e.g. ["fig15_data:1e+06"]) and never share a key between
    thunks of different types. *)

val generation_count : unit -> int
(** Number of actual generations so far in this process, over all
    tables (monotonic; cache hits and waiters do not count). For
    tests. *)

val generation_count_of : string -> int
(** Generations for one namespaced key: ["conn:" ^ name],
    ["pkt:" ^ name] or ["memo:" ^ key]. Monotonic across {!clear}, so
    tests can assert "exactly one generation" via deltas. *)

val clear : unit -> unit
(** Drop every cached product. Concurrent in-flight generations still
    complete and re-insert their own result. Generation counters are
    not reset. *)

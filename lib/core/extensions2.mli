(** Second wave of extension experiments: marginal-distribution evidence
    (Section VII-C), TCP phase effects (the [16] mechanism Section VII-C
    cites), and VBR video sources (Section VIII). Registered as
    x-marginal, x-phase, x-vbr. *)

type marginal_row = {
  series : string;
  a2 : float;  (** Modified A2 against normality. *)
  normal : bool;
  zero_fraction : float;  (** Share of bins with zero arrivals. *)
}

val marginal_data : unit -> marginal_row list
(** Section VII-C: "fractional Gaussian noise ... marginal distribution
    is normal, and cannot accommodate such a peak [at zero]". FTPDATA
    counts flunk normality with a large zero-spike; fGn passes; dense
    aggregate traffic sits in between. *)

val marginal : Engine.Task.ctx -> unit

type phase_row = {
  rtt_ratio : float;
  share_flow1 : float;  (** Flow 1's share of delivered packets. *)
}

val phase_data : unit -> phase_row list
(** Floyd & Jacobson's traffic phase effects: two long TCP flows over
    one droptail bottleneck; as the RTT ratio varies, the bandwidth
    split swings far from fair — deterministic structure, again nothing
    a Poisson model could produce. *)

val phase : Engine.Task.ctx -> unit

type vbr_result = {
  vbr_h_vt : float;
  vbr_h_whittle : float;
  mix_h_vt : float;
      (** VBR multiplexed with Poisson-like background bytes. *)
}

val vbr_data : unit -> vbr_result
(** Section VIII: VBR video carries H ~ 0.85 by construction of its
    source, and keeps the aggregate long-range dependent after
    multiplexing with short-range traffic. *)

val vbr : Engine.Task.ctx -> unit

val cwnd_data : unit -> (float * float) array
(** One long TCP flow's congestion-window trajectory through repeated
    loss cycles — Section VII-D's "long-term oscillations ... as the TCP
    congestion window changes over the lifetime of the connection". *)

val cwnd : Engine.Task.ctx -> unit

type estimators_row = {
  scenario : string;
  h_expected : float;  (** Analytic target; [nan] when there is none. *)
  e_whittle : float;
  e_vt : float;  (** Variance-time H. *)
  e_wavelet : Lrd.Wavelet.estimate;
}

val estimators_data : unit -> estimators_row list
(** The estimator cross-check: Whittle, variance-time and Abry-Veitch
    wavelet H side by side on stationary fGn (H in 0.5/0.7/0.9), a
    Pareto ON/OFF superposition (beta = 1.2, limit H = 0.9), and fGn
    H = 0.7 under a smooth diurnal envelope. On the last scenario the
    variance-time estimate is visibly biased high while the wavelet
    estimate stays within its confidence interval of the true H — the
    Haar detail filter's vanishing moment removes what aggregation
    cannot. *)

val estimators : Engine.Task.ctx -> unit

val summary : Engine.Task.ctx -> unit
(** Per-protocol connection/byte breakdown of every catalog dataset (the
    companion-paper tables the paper refers its readers to). *)

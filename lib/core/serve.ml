type spec = {
  source : string;
  events : float;
  rate : float;
  bin : float;
  beta : float;
  chunk : int;
  seed : int;
  window : int;
  cadence : int;
  sliding : bool;
  top_k : int;
  emit : string;
  h_drift : float;
  h_threshold : float;
  rate_drift : float;
  rate_threshold : float;
  alpha_drift : float;
  alpha_threshold : float;
  warmup : int;
}

let default =
  {
    source = "splice";
    events = 1e6;
    rate = 100.;
    bin = 1.;
    beta = 1.2;
    chunk = 65536;
    seed = 42;
    window = 256;
    cadence = 64;
    sliding = true;
    top_k = 64;
    emit = "jsonl";
    h_drift = 0.05;
    h_threshold = 0.25;
    rate_drift = 0.15;
    rate_threshold = 0.75;
    alpha_drift = 0.5;
    alpha_threshold = 2.5;
    warmup = 6;
  }

type summary = {
  bins : int;
  total : float;  (* events counted *)
  estimates : int;
  drifts : int;
  last : Streaming.Window.estimate option;
  interarrival : Stats.Quantile_sketch.t option;
      (* true inter-arrival sketch; stdin source only, where raw event
         times (not just bin counts) pass through the driver *)
}

(* JSON-safe float: JSON has no NaN/inf, so unavailable estimates
   serialise as null. %.6g is locale-independent in OCaml — the output
   is byte-deterministic for a fixed seed. *)
let jf v =
  if Float.is_nan v || not (Float.is_finite v) then "null"
  else Printf.sprintf "%.6g" v

let pp_estimate fmt spec (e : Streaming.Window.estimate) =
  match spec.emit with
  | "jsonl" ->
    Format.fprintf fmt
      "{\"type\":\"estimate\",\"seq\":%d,\"upto\":%d,\"covered\":%d,\"h\":%s,\"r2\":%s,\"hw\":%s,\"rate\":%s,\"alpha\":%s,\"q50\":%s,\"q99\":%s,\"q999\":%s}@."
      e.seq e.upto e.covered (jf e.h.Lrd.Hurst.h) (jf e.h.Lrd.Hurst.r2)
      (jf e.hw) (jf e.rate) (jf e.alpha) (jf e.q50) (jf e.q99) (jf e.q999)
  | _ ->
    Format.fprintf fmt
      "est seq=%-4d upto=%-8d covered=%-6d H=%s r2=%s Hw=%s rate=%s alpha=%s \
       q50=%s q99=%s q999=%s@."
      e.seq e.upto e.covered (jf e.h.Lrd.Hurst.h) (jf e.h.Lrd.Hurst.r2)
      (jf e.hw) (jf e.rate) (jf e.alpha) (jf e.q50) (jf e.q99) (jf e.q999)

let side_name = function Stats.Cusum.Up -> "up" | Stats.Cusum.Down -> "down"

let pp_drift fmt spec ~metric ~target (e : Streaming.Window.estimate)
    (a : Stats.Cusum.alarm) =
  match spec.emit with
  | "jsonl" ->
    Format.fprintf fmt
      "{\"type\":\"drift\",\"metric\":%S,\"side\":%S,\"seq\":%d,\"upto\":%d,\"stat\":%s,\"value\":%s,\"target\":%s}@."
      metric (side_name a.side) e.seq e.upto (jf a.stat) (jf a.value) (jf target)
  | _ ->
    Format.fprintf fmt
      "DRIFT metric=%s side=%s seq=%d upto=%d stat=%s value=%s target=%s@."
      metric (side_name a.side) e.seq e.upto (jf a.stat) (jf a.value) (jf target)

(* The three rolling-estimate monitors. H is watched directly; the rate
   on a log2 scale (so thresholds are relative, not absolute); the Hill
   tail index directly with generous slack (it is the noisiest of the
   three). All self-calibrate against the stream's opening regime. *)
type monitors = {
  m_h : Stats.Cusum.t;
  m_rate : Stats.Cusum.t;
  m_alpha : Stats.Cusum.t;
}

let make_monitors spec =
  {
    m_h =
      Stats.Cusum.create ~drift:spec.h_drift ~threshold:spec.h_threshold
        ~warmup:spec.warmup ();
    m_rate =
      Stats.Cusum.create ~drift:spec.rate_drift ~threshold:spec.rate_threshold
        ~warmup:spec.warmup ();
    m_alpha =
      Stats.Cusum.create ~drift:spec.alpha_drift ~threshold:spec.alpha_threshold
        ~warmup:spec.warmup ();
  }

let observe_monitors fmt spec mons drifts (e : Streaming.Window.estimate) =
  let watch det metric value =
    match Stats.Cusum.observe det value with
    | None -> ()
    | Some a ->
      incr drifts;
      let target =
        match Stats.Cusum.target det with Some m -> m | None -> nan
      in
      (* Adopt the post-shift regime as the new baseline: one drift
         event per regime change, not one per estimate while the shift
         persists. *)
      Stats.Cusum.recalibrate det;
      pp_drift fmt spec ~metric ~target e a;
      Engine.Log.warn "serve.drift"
        [
          ("metric", Engine.Log.S metric);
          ("side", Engine.Log.S (side_name a.Stats.Cusum.side));
          ("seq", Engine.Log.I e.seq);
          ("upto", Engine.Log.I e.upto);
          ("stat", Engine.Log.F a.stat);
          ("value", Engine.Log.F a.value);
          ("target", Engine.Log.F target);
        ]
  in
  watch mons.m_h "h" e.h.Lrd.Hurst.h;
  watch mons.m_rate "rate" (if e.rate > 0. then Float.log2 e.rate else nan);
  watch mons.m_alpha "alpha" e.alpha

(* ------------------------- count sources --------------------------- *)

(* Incremental event-time binner for unbounded stdin streams:
   [Sink.counts] needs the horizon up front, this does not. The trailing
   partial bin is emitted, so every event lands in some bin. *)
let bin_stdin ?ia ~bin ~chunk push_counts ic =
  let buf = Array.make (Int.max 1 chunk) 0. in
  let fill = ref 0 and cur = ref 0 and cnt = ref 0. in
  let last = ref neg_infinity in
  let seen = ref false in
  let prev_t = ref nan in
  let emit_bin () =
    buf.(!fill) <- !cnt;
    incr fill;
    cnt := 0.;
    if !fill = Array.length buf then begin
      push_counts buf 0 !fill;
      fill := 0
    end
  in
  let on_event t =
    if t < !last then
      invalid_arg
        (Printf.sprintf
           "serve: event times must be non-decreasing (%g after %g)" t !last);
    last := t;
    if t >= 0. then begin
      seen := true;
      (match ia with
      | Some sk when not (Float.is_nan !prev_t) ->
        Stats.Quantile_sketch.add sk (t -. !prev_t)
      | _ -> ());
      prev_t := t;
      let i = int_of_float (t /. bin) in
      while !cur < i do
        emit_bin ();
        incr cur
      done;
      cnt := !cnt +. 1.
    end
  in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match float_of_string_opt line with
         | Some t -> on_event t
         | None ->
           invalid_arg (Printf.sprintf "serve: bad event time %S" line)
     done
   with End_of_file -> ());
  if !seen then emit_bin ();
  if !fill > 0 then push_counts buf 0 !fill

let poisson_counts ~rate ~bin ~chunk ~n_bins rng push_counts =
  let d = Dist.Poisson_d.create ~mean:(rate *. bin) in
  let buf = Array.make (Int.max 1 chunk) 0. in
  let left = ref n_bins in
  while !left > 0 do
    let take = Int.min !left (Array.length buf) in
    for i = 0 to take - 1 do
      buf.(i) <- float_of_int (Dist.Poisson_d.sample d rng)
    done;
    push_counts buf 0 take;
    left := !left - take
  done

(* ON/OFF aggregate tuned to the same marginal rate as the Poisson
   source (16 sources at ~50% duty), so a Poisson -> ON/OFF splice
   shifts the correlation structure (H) without moving the rate — the
   drift the H monitor, not the rate monitor, should flag. *)
let onoff_sources_matched spec =
  List.init 16 (fun _ ->
      Traffic.Onoff.pareto_source ~beta:spec.beta
        ~mean_period:(50. *. spec.bin)
        ~on_rate:(2. *. spec.rate /. 16.))

let onoff_counts spec ~n_bins rng push_counts =
  Traffic.Onoff.iter_chunks ~chunk:spec.chunk
    ~sources:(onoff_sources_matched spec) ~dt:spec.bin ~n:n_bins rng
    (fun c -> push_counts c 0 (Array.length c))

(* Diurnally modulated Poisson: the paper's Fig. 1 WWW profile replayed
   as a rate envelope. One "day" is compressed to [day_bins] bins (at
   least 4 cycles over the run when the stream is long enough), the
   per-hour arrival rate is [24 * fraction * rate] so the daily average
   stays [rate], and bins are sampled independently Poisson. The rolling
   variance-time H reads the slow envelope as spurious long memory; the
   wavelet H differences it away — the serve-side demo of the estimator
   disagreement. *)
let diurnal_counts spec ~n_bins rng push_counts =
  let profile = Trace.Diurnal.www in
  let day_bins = Int.max 96 (n_bins / 4) in
  (* Linearly interpolate between the hourly weights: a continuous
     piecewise-linear envelope. Stepping the rate once per hour instead
     would inject discontinuities whose Haar details contaminate every
     octave — exactly the artefact the wavelet's trend robustness (one
     vanishing moment, so constants cancel and smooth drift is confined
     to the coarsest octaves) is supposed to dodge. *)
  let rate_at i =
    let u = float_of_int (i mod day_bins) /. float_of_int day_bins *. 24. in
    let h = int_of_float u in
    let frac = u -. float_of_int h in
    let f0 = Trace.Diurnal.fraction profile h
    and f1 = Trace.Diurnal.fraction profile (h + 1) in
    spec.rate *. 24. *. (f0 +. (frac *. (f1 -. f0)))
  in
  let buf = Array.make (Int.max 1 spec.chunk) 0. in
  let fill = ref 0 in
  for i = 0 to n_bins - 1 do
    let d =
      Dist.Poisson_d.create ~mean:(Float.max 1e-9 (rate_at i *. spec.bin))
    in
    buf.(!fill) <- float_of_int (Dist.Poisson_d.sample d rng);
    incr fill;
    if !fill = Array.length buf then begin
      push_counts buf 0 !fill;
      fill := 0
    end
  done;
  if !fill > 0 then push_counts buf 0 !fill

let n_bins_of spec =
  Int.max 1 (int_of_float (Float.round (spec.events /. spec.rate /. spec.bin)))

let feed ?ia spec push_counts =
  let rng tag = Engine.Task.derive_rng ~seed:spec.seed ("serve" ^ tag) in
  match spec.source with
  | "stdin" -> bin_stdin ?ia ~bin:spec.bin ~chunk:spec.chunk push_counts stdin
  | "poisson" ->
    poisson_counts ~rate:spec.rate ~bin:spec.bin ~chunk:spec.chunk
      ~n_bins:(n_bins_of spec) (rng "") push_counts
  | "onoff" -> onoff_counts spec ~n_bins:(n_bins_of spec) (rng "") push_counts
  | "diurnal" ->
    diurnal_counts spec ~n_bins:(n_bins_of spec) (rng "") push_counts
  | "splice" ->
    (* First half Poisson, second half ON/OFF at the same marginal rate:
       the canonical injected regime change. *)
    let n = n_bins_of spec in
    let n1 = n / 2 in
    poisson_counts ~rate:spec.rate ~bin:spec.bin ~chunk:spec.chunk ~n_bins:n1
      (rng "#poisson") push_counts;
    onoff_counts spec ~n_bins:(n - n1) (rng "#onoff") push_counts
  | s ->
    invalid_arg
      (Printf.sprintf
         "serve: unknown source %S (want splice|poisson|onoff|diurnal|stdin)" s)

let run ?(fmt = Format.std_formatter) spec =
  let mons = make_monitors spec in
  let drifts = ref 0 in
  let estimates = ref 0 in
  let last = ref None in
  let total = ref 0. in
  let emit e =
    incr estimates;
    last := Some e;
    pp_estimate fmt spec e;
    observe_monitors fmt spec mons drifts e
  in
  let win =
    Streaming.Window.create
      ~kind:(if spec.sliding then Streaming.Window.Sliding else Tumbling)
      ~window:spec.window ~cadence:spec.cadence ~top_k:spec.top_k ~bin:spec.bin
      ~emit ()
  in
  let ia =
    if spec.source = "stdin" then Some (Stats.Quantile_sketch.create ())
    else None
  in
  feed ?ia spec (fun buf pos len ->
      for i = pos to pos + len - 1 do
        total := !total +. buf.(i)
      done;
      Streaming.Window.push_slice win buf pos len);
  let s =
    {
      bins = Streaming.Window.bins win;
      total = !total;
      estimates = !estimates;
      drifts = !drifts;
      last = !last;
      interarrival = ia;
    }
  in
  let iaq =
    match ia with
    | Some sk when Stats.Quantile_sketch.count sk > 0 ->
      let q p = Stats.Quantile_sketch.quantile sk p in
      Some (q 0.5, q 0.99, q 0.999)
    | _ -> None
  in
  (match spec.emit with
  | "jsonl" ->
    let ia_fields =
      match iaq with
      | None -> ""
      | Some (q50, q99, q999) ->
        Printf.sprintf ",\"ia50\":%s,\"ia99\":%s,\"ia999\":%s" (jf q50) (jf q99)
          (jf q999)
    in
    Format.fprintf fmt
      "{\"type\":\"summary\",\"bins\":%d,\"events\":%s,\"estimates\":%d,\"drifts\":%d%s}@."
      s.bins (jf s.total) s.estimates s.drifts ia_fields
  | _ ->
    let ia_fields =
      match iaq with
      | None -> ""
      | Some (q50, q99, q999) ->
        Printf.sprintf " ia50=%s ia99=%s ia999=%s" (jf q50) (jf q99) (jf q999)
    in
    Format.fprintf fmt "serve done bins=%d events=%s estimates=%d drifts=%d%s@."
      s.bins (jf s.total) s.estimates s.drifts ia_fields);
  s

(** The [wanpoisson netsim] driver: replica-sharded multi-process
    network simulation at 10^8-10^9 packets.

    The distribution unit is a whole {e replica} — an independent
    {!Queueing.Network} simulation fed by its own
    {!Engine.Task.derive_rng} stream keyed by absolute replica index
    (the PR-5/PR-7 discipline). This contrasts with {!Core.Farm}'s
    macro-shard rule: Poisson increments over disjoint bin windows are
    independent, so ONE sample path can be cut and farmed out; a
    queueing network carries state (ring occupancy, server free times,
    RED averages) whose law at a cut point has no closed form, so
    netsim never splits a sample path — it averages independent ones.
    Worker [w] owns the replicas congruent to [w mod workers]; the
    coordinator merges sketch/count partials in {e replica-index
    order}, so stdout is byte-identical at any [--workers]. *)

type spec = {
  model : string;  (** ["onoff"] (Pareto sources) or ["poisson"]. *)
  events : float;  (** Total packets across all replicas. *)
  replicas : int;  (** Independent simulations; the sharding grid. *)
  sources : int;  (** ON/OFF sources per replica (onoff model). *)
  beta : float;  (** Pareto shape for ON/OFF periods. *)
  mean_period : float;
  on_rate : float;  (** Packets/s while a source is ON. *)
  rate : float;  (** Aggregate packet rate (poisson model). *)
  load : float;  (** Target utilization; service = load / lambda. *)
  topology : string;  (** ["tandem:K"] (K in [1,8]) or ["fanin:M"]
                          (M in [1,7], plus one egress link). *)
  discipline : string;  (** ["droptail"], ["red"] or ["priority"]. *)
  buffer : int;  (** Waiting slots per link. *)
  chunk : int;  (** Streaming chunk size. *)
  seed : int;
  workers : int;
}

val default : spec

type plan = {
  topo : Queueing.Network.topology;
  disc : Queueing.Network.discipline;
  n_links : int;
  lambda : float;  (** Aggregate packet rate implied by the model. *)
  service : float;  (** Per-link deterministic service time. *)
  horizon : float;  (** Per-replica simulated span. *)
}

val plan : spec -> plan
(** Raises [Invalid_argument] on an unsupported model, topology,
    discipline or out-of-range field. *)

val red_of_buffer : int -> Queueing.Network.red
(** The RED parameters [discipline = "red"] derives from the buffer
    size: thresholds at 1/4 and 3/4 occupancy, [max_p = 0.1],
    [weight = 0.002]. *)

type merged_class = {
  c_served : int;
  c_dropped : int;
  c_loss : float;  (** dropped / (served + dropped); 0 when idle. *)
  c_mean_wait : float;
  c_max_wait : float;
  c_p50 : float;
  c_p99 : float;
  c_p999 : float;  (** Quantiles of the replica-order merged sketch. *)
  c_sketch : Stats.Quantile_sketch.t;
}

type merged_link = {
  m_util : float;  (** Mean utilization across replicas. *)
  m_hash : int;  (** Replica-order chained per-link drop hashes. *)
  m_classes : merged_class array;  (** Length 2: class 0 (high), 1. *)
}

type result = { total_events : int; links : merged_link array }

val worker_entry : string -> int
(** The hidden [netsim-worker] subcommand body: parse the JSON spec
    argument (spec fields plus ["index"]), simulate the owned replicas,
    write frames to stdout, return the exit code. Never raises. *)

val run : exe:string -> spec -> (result, string) Stdlib.result
(** Coordinator: spawn [spec.workers] processes re-executing [exe] via
    {!Engine.Farm}, drain replica partials and merge them in replica
    order. [Error] when any worker exits abnormally, breaks its frame
    stream, or omits a replica. Raises [Invalid_argument] only on a bad
    spec (see {!plan}). *)

val run_inline : spec -> result
(** The same computation — replica simulation, frame encode/decode,
    replica-order merge — in one process; produces the identical
    [result] (workers only affect process placement, never values). *)

val pp : Format.formatter -> spec -> result -> unit
(** Deterministic fixed-precision report. Deliberately omits the worker
    count and any timing: stdout must be byte-identical at any
    [--workers]. *)

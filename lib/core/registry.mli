(** One entry per table, figure, and in-text experiment; the bench and
    CLI harnesses iterate this list. Ids match the per-experiment index
    in DESIGN.md. *)

type entry = {
  id : string;  (** e.g. "fig5", "table1", "x-mux100". *)
  title : string;
  run : Engine.Task.ctx -> unit;
      (** Renders the report into the task's private context — never a
          shared formatter — so entries can run on parallel domains. *)
}

val all : entry list

val find : string -> entry option
(** Hashtable-backed (O(1)); building the index raises
    [Invalid_argument] if two entries share an id. *)

val ids : unit -> string list

val task : entry -> Engine.Task.t
(** The engine task for an entry. Figure-bearing entries (see
    {!Figure_svg.supported}) carry a lazy SVG thunk, rendered only when
    the engine is asked for figures. *)

val tasks : unit -> Engine.Task.t list
(** [task] over {!all}, in registry order. *)

type entry = { id : string; title : string; run : Engine.Task.ctx -> unit }

let all =
  [
    { id = "table1"; title = "Table I: SYN/FIN connection traces";
      run = Fig_connection.table1 };
    { id = "table2"; title = "Table II: packet traces";
      run = Fig_packet.table2 };
    { id = "fig1"; title = "Fig. 1: hourly connection arrival rates";
      run = Fig_connection.fig1 };
    { id = "fig2"; title = "Fig. 2: Poisson arrival test battery";
      run = Fig_connection.fig2 };
    { id = "fig3"; title = "Fig. 3: TELNET interarrival CDFs";
      run = Fig_packet.fig3 };
    { id = "fig4"; title = "Fig. 4: Tcplib vs exponential dot plots";
      run = Fig_packet.fig4 };
    { id = "fig5"; title = "Fig. 5: TELNET variance-time plot";
      run = Fig_packet.fig5 };
    { id = "fig6"; title = "Fig. 6: 5 s interval counts";
      run = Fig_packet.fig6 };
    { id = "fig7"; title = "Fig. 7: FULL-TEL model variance-time";
      run = Fig_packet.fig7 };
    { id = "fig8"; title = "Fig. 8: FTPDATA connection spacing";
      run = Fig_connection.fig8 };
    { id = "fig9"; title = "Fig. 9: burst byte concentration";
      run = Fig_connection.fig9 };
    { id = "fig10"; title = "Fig. 10: LBL PKT burst dominance";
      run = Fig_packet.fig10 };
    { id = "fig11"; title = "Fig. 11: DEC WRL burst dominance";
      run = Fig_packet.fig11 };
    { id = "fig12"; title = "Fig. 12: LBL PKT variance-time (all packets)";
      run = Fig_selfsim.fig12 };
    { id = "fig13"; title = "Fig. 13: DEC WRL variance-time (all packets)";
      run = Fig_selfsim.fig13 };
    { id = "fig14"; title = "Fig. 14: Pareto count process, small bins";
      run = Fig_selfsim.fig14 };
    { id = "fig15"; title = "Fig. 15: Pareto count process, large bins";
      run = Fig_selfsim.fig15 };
    { id = "x-rlogin-x11"; title = "S3: RLOGIN vs X11";
      run = Experiments.rlogin_x11 };
    { id = "x-expfit"; title = "S4: exponential fit quantile errors";
      run = Experiments.exp_fit_errors };
    { id = "x-mux100"; title = "S4: 100 multiplexed TELNET connections";
      run = Experiments.multiplex100 };
    { id = "x-queue"; title = "S4: FIFO queueing delay comparison";
      run = Experiments.queueing_delay };
    { id = "x-bursttail"; title = "S6: FTPDATA burst-size tail";
      run = Experiments.burst_tail };
    { id = "x-hugeburst"; title = "S6: huge-burst arrival exponentiality";
      run = Experiments.huge_burst_arrivals };
    { id = "x-mginf"; title = "App. D/E: M/G/inf Hurst behaviour";
      run = Experiments.mg_inf };
    { id = "x-pareto"; title = "App. B: Pareto properties";
      run = Experiments.pareto_properties };
    { id = "x-burstlull"; title = "App. C: burst/lull scaling";
      run = Experiments.burst_lull };
    { id = "x-priority"; title = "S8: priority starvation";
      run = Experiments.priority_starvation };
    { id = "x-fgn"; title = "Validation: Hurst estimators on fGn";
      run = Experiments.fgn_validate };
    { id = "x-mgk"; title = "Ext (S7-C): M/G/k capacity vs correlations";
      run = Extensions.mgk };
    { id = "x-onoff"; title = "Ext (S7-B): ON/OFF superposition";
      run = Extensions.onoff };
    { id = "x-farima"; title = "Ext (S7-D): fractional ARIMA";
      run = Extensions.farima };
    { id = "x-wavelet"; title = "Ext: wavelet Hurst estimator";
      run = Extensions.wavelet };
    { id = "x-responder"; title = "Ext (S1/S8): TELNET responder model";
      run = Extensions.responder };
    { id = "x-tcp"; title = "Ext (S7-C): TCP bottleneck dynamics";
      run = Extensions.tcp };
    { id = "x-admission"; title = "Ext (S8): admission control under LRD";
      run = Extensions.admission };
    { id = "x-sync"; title = "Ext (S1): timer-driven periodicity";
      run = Extensions.sync };
    { id = "x-ablate"; title = "Ablations (DESIGN.md section 6)";
      run = Extensions.ablations };
    { id = "x-marginal"; title = "Ext (S7-C): marginals vs Gaussianity";
      run = Extensions2.marginal };
    { id = "x-phase"; title = "Ext (S7-C): TCP traffic phase effects";
      run = Extensions2.phase };
    { id = "x-vbr"; title = "Ext (S8): VBR video sources";
      run = Extensions2.vbr };
    { id = "x-cwnd"; title = "Ext (S7-D): congestion-window sawtooth";
      run = Extensions2.cwnd };
    { id = "x-estimators"; title = "Ext: estimator agreement under trends";
      run = Extensions2.estimators };
    { id = "x-summary"; title = "Per-protocol dataset breakdown";
      run = Extensions2.summary };
    { id = "x-buffer-sizing"; title = "Ext (S8): buffer sizing vs input model";
      run = Extensions3.buffer_sizing };
  ]

(* Lazily built id index; building it fails fast on a duplicate id so a
   registry mistake surfaces on the first lookup (and in the tests), not
   as one experiment silently shadowing another. *)
let index =
  lazy
    (let tbl = Hashtbl.create (2 * List.length all) in
     List.iter
       (fun e ->
         if Hashtbl.mem tbl e.id then
           invalid_arg ("Registry: duplicate experiment id " ^ e.id);
         Hashtbl.add tbl e.id e)
       all;
     tbl)

let find id = Hashtbl.find_opt (Lazy.force index) id
let ids () = List.map (fun e -> e.id) all

let task e =
  let figures =
    if List.mem e.id Figure_svg.supported then
      Some
        (fun () ->
          match Figure_svg.render e.id with
          | Some svg -> [ (e.id ^ ".svg", svg) ]
          | None -> [])
    else None
  in
  Engine.Task.make ?figures ~id:e.id ~title:e.title e.run

let tasks () = List.map task all

(** Connection-level reproductions: Table I, Fig. 1 (diurnal rates),
    Fig. 2 (Poisson test battery), Fig. 8 (FTPDATA spacing), Fig. 9
    (burst byte concentration).

    Each figure has a [_data] accessor returning the computed series (for
    tests and downstream use) and a printer that renders the
    paper-comparable report. *)

val table1 : Engine.Task.ctx -> unit

val fig1_data : unit -> (string * float array) list
(** (curve label, 24 hourly fractions of the day's connections). Curves:
    TELNET, FTP (sessions), NNTP, SMTP (averaged over LBL-1..4) and
    BC SMTP (east-coast shift). *)

val fig1 : Engine.Task.ctx -> unit

type fig2_row = {
  dataset : string;
  arrivals : string;
      (** TELNET / FTP / FTPDATA / FTPDATA-burst / SMTP / NNTP / WWW. *)
  interval : float;  (** 3600 or 600 seconds. *)
  verdict : Stest.Poisson_check.verdict;
}

val fig2_data : unit -> fig2_row list
(** The full battery over every SYN/FIN dataset, both interval lengths. *)

val fig2 : Engine.Task.ctx -> unit

val fig8_data : unit -> (string * (float * float) array) list
(** Per dataset: CDF of intra-session FTPDATA connection spacings,
    sampled at log-spaced points — (spacing seconds, fraction <=). *)

val fig8 : Engine.Task.ctx -> unit

val fig9_data : unit -> (string * int * (float * float) array) list
(** Per dataset: (name, number of bursts, concentration curve of
    (% largest bursts, % of FTPDATA bytes)). *)

val fig9 : Engine.Task.ctx -> unit

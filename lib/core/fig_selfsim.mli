(** Section VII reproductions: Figs. 12-13 (variance-time plots of
    aggregate traffic, with Whittle and Beran verdicts) and Figs. 14-15
    (visual self-similarity of the i.i.d. Pareto count process). *)

type trace_selfsim = {
  trace_name : string;
  curve : Timeseries.Variance_time.curve;
  vt_hurst : float;  (** From the variance-time slope. *)
  whittle : Lrd.Whittle.result;  (** On 0.1 s counts. *)
  beran : Lrd.Beran.result;
      (** Goodness-of-fit of fGn at the Whittle H, 0.1 s counts. *)
  whittle_1s : Lrd.Whittle.result;  (** On 1 s counts. *)
  beran_1s : Lrd.Beran.result;
      (** The paper reports fGn consistency per time scale ("at time
          scales of 1 s and greater"); this is the 1 s verdict. *)
}

val fig12_data : unit -> trace_selfsim list
(** LBL PKT traces, all packets, 0.01 s bins (Whittle/Beran computed on
    the 0.1 s aggregation). *)

val fig12 : Engine.Task.ctx -> unit

val fig13_data : unit -> trace_selfsim list
(** DEC WRL traces. *)

val fig13 : Engine.Task.ctx -> unit

type pareto_panel = {
  bin : float;
  seeds : int list;
  stats : Lrd.Pareto_count.run_stats list;  (** One per seed. *)
  sample_counts : float array;  (** Count process of the first seed. *)
}

val fig14_data : ?bin:float -> unit -> pareto_panel
(** Default bin 10^3 (the paper's Fig. 14): 9 seeds, 1000 bins,
    beta = 1, a = 1. *)

val fig14 : Engine.Task.ctx -> unit

val fig15_data : ?bin:float -> unit -> pareto_panel
(** Default bin 10^6 — scaled down from the paper's 10^7 to keep the
    default run fast (see EXPERIMENTS.md); pass [~bin:1e7] for the
    paper-exact panel. *)

val fig15 : Engine.Task.ctx -> unit

(** One-stop analysis of an arrival process: everything the paper would
    ask of a trace, in one report. Backs `wanpoisson analyze`. *)

type report = {
  n_arrivals : int;
  span : float;
  poisson_1h : Stest.Poisson_check.verdict;
  poisson_10min : Stest.Poisson_check.verdict;
  h_variance_time : Lrd.Hurst.estimate;
  h_vt_ci : Stats.Bootstrap.interval;
      (** Moving-block bootstrap CI on the variance-time H. *)
  h_rs : Lrd.Hurst.estimate;
  h_wavelet : Lrd.Wavelet.estimate;
  whittle : Lrd.Whittle.result;
  beran : Lrd.Beran.result;
  lo : Lrd.Lo_rs.result;
  marginal_normal : Stest.Anderson_darling.verdict;
  zero_fraction : float;
}

val arrivals : ?bin:float -> span:float -> float array -> report
(** [arrivals ~span times] with counting bin [bin] (default 1 s).
    Requires at least 100 arrivals and span/bin >= 512. *)

val pp : Format.formatter -> report -> unit

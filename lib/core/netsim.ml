(* The [wanpoisson netsim] driver: replica-sharded network simulation.

   Contrast with Core.Farm's macro-shard rule: the poisson farm can cut
   ONE sample path into bin-aligned windows because Poisson increments
   over disjoint windows are independent. A queueing network carries
   state (ring occupancy, server free times, RED averages) whose law at
   a cut point has no closed form, so the netsim unit of distribution
   is a whole REPLICA — an independent simulation under its own
   derive_rng stream, keyed by absolute replica index exactly like the
   PR-5/PR-7 task discipline. Worker w owns the replicas congruent to
   w mod workers; the coordinator merges partials in replica-index
   order (sketch merges, count sums, max folds — all order-fixed), so
   stdout is byte-identical at any --workers. *)

type spec = {
  model : string;  (* "onoff" | "poisson" *)
  events : float;  (* total packets across all replicas *)
  replicas : int;
  sources : int;
  beta : float;
  mean_period : float;
  on_rate : float;
  rate : float;
  load : float;
  topology : string;  (* "tandem:K" | "fanin:M" *)
  discipline : string;  (* "droptail" | "red" | "priority" *)
  buffer : int;
  chunk : int;
  seed : int;
  workers : int;
}

let default =
  {
    model = "onoff";
    events = 1e6;
    replicas = 8;
    sources = 64;
    beta = 1.5;
    mean_period = 10.;
    on_rate = 4.;
    rate = 1000.;
    load = 0.8;
    topology = "tandem:2";
    discipline = "droptail";
    buffer = 64;
    chunk = 65536;
    seed = 42;
    workers = 1;
  }

(* All replica sketches and the coordinator's merge targets share one
   accuracy so merge_into never sees mismatched grids. *)
let sketch_accuracy = 0.01

(* RED parameters derived from the buffer size: thresholds at 1/4 and
   3/4 occupancy, gentle 10% ceiling, classic 0.002 EWMA weight. *)
let red_of_buffer b =
  {
    Queueing.Network.min_th = 0.25 *. float_of_int b;
    max_th = 0.75 *. float_of_int b;
    max_p = 0.1;
    weight = 0.002;
  }

type plan = {
  topo : Queueing.Network.topology;
  disc : Queueing.Network.discipline;
  n_links : int;
  lambda : float;  (* aggregate packet rate *)
  service : float;  (* per-link service time: load / lambda *)
  horizon : float;  (* per-replica simulated span *)
}

let parse_topology s =
  match String.split_on_char ':' s with
  | [ "tandem"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 1 && k <= 8 -> (Queueing.Network.Tandem k, k)
    | _ -> invalid_arg "netsim: tandem link count must be in [1, 8]")
  | [ "fanin"; m ] -> (
    match int_of_string_opt m with
    | Some m when m >= 1 && m <= 7 -> (Queueing.Network.Fan_in m, m + 1)
    | _ -> invalid_arg "netsim: fan-in ingress count must be in [1, 7]")
  | _ -> invalid_arg "netsim: topology must be tandem:K or fanin:M"

let plan spec =
  let topo, n_links = parse_topology spec.topology in
  let disc =
    match spec.discipline with
    | "droptail" -> Queueing.Network.Drop_tail
    | "priority" -> Queueing.Network.Priority
    | "red" ->
      if spec.buffer < 1 then
        invalid_arg "netsim: red needs --buffer >= 1";
      Queueing.Network.Red (red_of_buffer spec.buffer)
    | _ -> invalid_arg "netsim: discipline must be droptail, red or priority"
  in
  if spec.model <> "onoff" && spec.model <> "poisson" then
    invalid_arg "netsim: model must be onoff or poisson";
  if not (spec.events >= 1. && spec.events <= 1e12) then
    invalid_arg "netsim: events must be in [1, 1e12]";
  if spec.replicas < 1 || spec.replicas > 4096 then
    invalid_arg "netsim: replicas must be in [1, 4096]";
  if spec.workers < 1 || spec.workers > 1024 then
    invalid_arg "netsim: workers must be in [1, 1024]";
  if spec.chunk < 256 || spec.chunk > 1 lsl 24 then
    invalid_arg "netsim: chunk must be in [256, 2^24]";
  if spec.buffer < 0 || spec.buffer > 1_000_000 then
    invalid_arg "netsim: buffer must be in [0, 1e6]";
  if spec.model = "onoff" then begin
    if spec.sources < 1 || spec.sources > 1_000_000 then
      invalid_arg "netsim: sources must be in [1, 1e6]";
    if not (spec.beta > 1. && spec.beta <= 10.) then
      invalid_arg "netsim: beta must be in (1, 10]";
    if not (spec.mean_period > 0.) then
      invalid_arg "netsim: mean-period must be positive";
    if not (spec.on_rate > 0.) then
      invalid_arg "netsim: on-rate must be positive"
  end
  else if not (spec.rate > 0.) then
    invalid_arg "netsim: rate must be positive";
  if not (spec.load > 0. && spec.load <= 4.) then
    invalid_arg "netsim: load must be in (0, 4]";
  let lambda =
    if spec.model = "poisson" then spec.rate
    else float_of_int spec.sources *. spec.on_rate /. 2.
  in
  {
    topo;
    disc;
    n_links;
    lambda;
    service = spec.load /. lambda;
    horizon = spec.events /. float_of_int spec.replicas /. lambda;
  }

(* ---------------- per-replica simulation ---------------- *)

type link_part = {
  lp_util : float;
  lp_hash : int;
  lp_served : int array;  (* per class, length 2 *)
  lp_dropped : int array;
  lp_sum_wait : float array;
  lp_max_wait : float array;
  lp_sketch : Stats.Quantile_sketch.t array;
}

type partial = { q_index : int; q_events : int; q_links : link_part array }

(* Replica r's traffic stream is keyed by its absolute index — the
   netsim analogue of the farm's "farm#shard#window" keying — so the
   set of sample paths is fixed by (seed, spec) alone, never by which
   worker ran which replica. *)
let replica_rng spec r =
  Engine.Task.derive_rng ~seed:spec.seed (Printf.sprintf "netsim#%d" r)

let compute_replica ~spec ~(plan : plan) r =
  let rng = replica_rng spec r in
  let net =
    Queueing.Network.create ~sketch_accuracy
      ~seed:((spec.seed * 0x9e3779b9) lxor r)
      ~topology:plan.topo ~discipline:plan.disc ~buffer:spec.buffer
      ~services:(Array.make plan.n_links plan.service)
      ()
  in
  let events = ref 0 in
  (match spec.model with
  | "onoff" ->
    let sources =
      List.init spec.sources (fun _ ->
          Traffic.Onoff.pareto_source ~beta:spec.beta
            ~mean_period:spec.mean_period ~on_rate:spec.on_rate)
    in
    Traffic.Superpose.iter ~chunk:spec.chunk ~sources ~horizon:plan.horizon
      rng (fun times srcs len ->
        Queueing.Network.push_chunk net ~times ~srcs ~pos:0 ~len;
        events := !events + len)
  | _ ->
    (* Poisson packets take their global sequence index as source id:
       classes alternate and fan-in ingress round-robins, chunk-size
       independent by construction. *)
    let srcs = ref [||] in
    Traffic.Poisson_proc.iter_chunks ~chunk:spec.chunk ~rate:spec.rate
      ~duration:plan.horizon rng (fun times ->
        let len = Array.length times in
        if Array.length !srcs < len then srcs := Array.make len 0;
        let s = !srcs in
        let base = !events in
        for j = 0 to len - 1 do
          s.(j) <- base + j
        done;
        Queueing.Network.push_chunk net ~times ~srcs:s ~pos:0 ~len;
        events := !events + len));
  let stats = Queueing.Network.finish net in
  let q_links =
    Array.map
      (fun (l : Queueing.Network.link_stats) ->
        {
          lp_util = l.utilization;
          lp_hash = l.drop_hash;
          lp_served =
            Array.map (fun (c : Queueing.Network.class_stats) -> c.served)
              l.classes;
          lp_dropped =
            Array.map (fun (c : Queueing.Network.class_stats) -> c.dropped)
              l.classes;
          lp_sum_wait =
            Array.map
              (fun (c : Queueing.Network.class_stats) ->
                c.mean_wait *. float_of_int c.served)
              l.classes;
          lp_max_wait =
            Array.map (fun (c : Queueing.Network.class_stats) -> c.max_wait)
              l.classes;
          lp_sketch =
            Array.map (fun (c : Queueing.Network.class_stats) -> c.sketch)
              l.classes;
        })
      stats
  in
  { q_index = r; q_events = !events; q_links }

(* ---------------- frame payloads ---------------- *)

(* Farm reserves kinds 1-5; the replica partial — the "kind-5-style"
   sketch partial of the netsim protocol — is kind 6. The done frame
   reuses farm's kind 4 layout so Engine.Farm's is_final plumbing is
   identical. *)
let kind_done = 4
let kind_replica = 6

let replica_frame p =
  let b = Buffer.create 512 in
  Engine.Frame.Wr.u32 b p.q_index;
  Engine.Frame.Wr.i64 b p.q_events;
  Engine.Frame.Wr.u16 b (Array.length p.q_links);
  Array.iter
    (fun lp ->
      Engine.Frame.Wr.f64 b lp.lp_util;
      Engine.Frame.Wr.i64 b lp.lp_hash;
      for c = 0 to 1 do
        Engine.Frame.Wr.i64 b lp.lp_served.(c);
        Engine.Frame.Wr.i64 b lp.lp_dropped.(c);
        Engine.Frame.Wr.f64 b lp.lp_sum_wait.(c);
        Engine.Frame.Wr.f64 b lp.lp_max_wait.(c);
        Engine.Frame.Wr.str b
          (Stats.Quantile_sketch.to_string lp.lp_sketch.(c))
      done)
    p.q_links;
  { Engine.Frame.kind = kind_replica; payload = Buffer.contents b }

let done_frame ~replicas ~events ~wall_s ~rss_kb =
  let b = Buffer.create 32 in
  Engine.Frame.Wr.u32 b replicas;
  Engine.Frame.Wr.i64 b events;
  Engine.Frame.Wr.f64 b wall_s;
  Engine.Frame.Wr.i64 b rss_kb;
  { Engine.Frame.kind = kind_done; payload = Buffer.contents b }

type decoded =
  | D_replica of partial
  | D_done of int * int * float * int  (* replicas, events, wall_s, rss_kb *)

let decode_frame (f : Engine.Frame.t) =
  let open Engine.Frame.Rd in
  match
    let c = of_string f.payload in
    if f.kind = kind_replica then begin
      let q_index = u32 c in
      let q_events = i64 c in
      let n_links = u16 c in
      if n_links < 1 || n_links > 8 then
        raise (Malformed "replica frame: bad link count");
      let q_links =
        Array.init n_links (fun _ ->
            let lp_util = f64 c in
            let lp_hash = i64 c in
            let served = Array.make 2 0
            and dropped = Array.make 2 0
            and sum_wait = Array.make 2 0.
            and max_wait = Array.make 2 0.
            and sketch =
              Array.init 2 (fun _ ->
                  Stats.Quantile_sketch.create ~accuracy:sketch_accuracy ())
            in
            for cl = 0 to 1 do
              served.(cl) <- i64 c;
              dropped.(cl) <- i64 c;
              sum_wait.(cl) <- f64 c;
              max_wait.(cl) <- f64 c;
              match Stats.Quantile_sketch.of_string (str c) with
              | Ok s -> sketch.(cl) <- s
              | Error e -> raise (Malformed e)
            done;
            {
              lp_util;
              lp_hash;
              lp_served = served;
              lp_dropped = dropped;
              lp_sum_wait = sum_wait;
              lp_max_wait = max_wait;
              lp_sketch = sketch;
            })
      in
      if not (at_end c) then
        raise (Malformed "trailing bytes in replica frame");
      D_replica { q_index; q_events; q_links }
    end
    else if f.kind = kind_done then begin
      let replicas = u32 c in
      let events = i64 c in
      let wall = f64 c in
      let rss = i64 c in
      D_done (replicas, events, wall, rss)
    end
    else raise (Malformed (Printf.sprintf "unknown frame kind %d" f.kind))
  with
  | d -> Ok d
  | exception Malformed m -> Error m

(* ---------------- coordinator merge ---------------- *)

type merged_class = {
  c_served : int;
  c_dropped : int;
  c_loss : float;  (* dropped / offered *)
  c_mean_wait : float;
  c_max_wait : float;
  c_p50 : float;
  c_p99 : float;
  c_p999 : float;
  c_sketch : Stats.Quantile_sketch.t;
}

type merged_link = {
  m_util : float;  (* mean across replicas *)
  m_hash : int;  (* replica-order chained drop hashes *)
  m_classes : merged_class array;
}

type result = { total_events : int; links : merged_link array }

(* [parts] holds every replica exactly once, index order. Every fold
   below (sums, maxes, sketch merges, the hash chain) runs left to
   right over that fixed order, so the result — and the printed report
   — is bit-identical at any worker count. *)
let merge_parts ~(plan : plan) (parts : partial array) =
  let n = Array.length parts in
  let total_events = ref 0 in
  Array.iter (fun p -> total_events := !total_events + p.q_events) parts;
  let links =
    Array.init plan.n_links (fun l ->
        let util = ref 0. and hash = ref 0x811c9dc5 in
        let served = Array.make 2 0
        and dropped = Array.make 2 0
        and sum_wait = Array.make 2 0.
        and max_wait = Array.make 2 0. in
        let sketch =
          Array.init 2 (fun _ ->
              Stats.Quantile_sketch.create ~accuracy:sketch_accuracy ())
        in
        for r = 0 to n - 1 do
          let lp = parts.(r).q_links.(l) in
          util := !util +. lp.lp_util;
          hash := ((!hash * 0x01000193) lxor lp.lp_hash) land max_int;
          for c = 0 to 1 do
            served.(c) <- served.(c) + lp.lp_served.(c);
            dropped.(c) <- dropped.(c) + lp.lp_dropped.(c);
            sum_wait.(c) <- sum_wait.(c) +. lp.lp_sum_wait.(c);
            if lp.lp_max_wait.(c) > max_wait.(c) then
              max_wait.(c) <- lp.lp_max_wait.(c);
            Stats.Quantile_sketch.merge_into sketch.(c) lp.lp_sketch.(c)
          done
        done;
        let classes =
          Array.init 2 (fun c ->
              let offered = served.(c) + dropped.(c) in
              let q =
                if Stats.Quantile_sketch.count sketch.(c) = 0 then
                  fun _ -> 0.
                else Stats.Quantile_sketch.quantile sketch.(c)
              in
              {
                c_served = served.(c);
                c_dropped = dropped.(c);
                c_loss =
                  (if offered = 0 then 0.
                   else float_of_int dropped.(c) /. float_of_int offered);
                c_mean_wait =
                  (if served.(c) = 0 then 0.
                   else sum_wait.(c) /. float_of_int served.(c));
                c_max_wait = max_wait.(c);
                c_p50 = q 0.5;
                c_p99 = q 0.99;
                c_p999 = q 0.999;
                c_sketch = sketch.(c);
              })
        in
        {
          m_util = !util /. float_of_int n;
          m_hash = !hash;
          m_classes = classes;
        })
  in
  { total_events = !total_events; links }

(* ---------------- worker side ---------------- *)

let spec_json_fields spec =
  [
    ("model", Engine.Json.Str spec.model);
    ("events", Engine.Json.Float spec.events);
    ("replicas", Engine.Json.Int spec.replicas);
    ("sources", Engine.Json.Int spec.sources);
    ("beta", Engine.Json.Float spec.beta);
    ("mean_period", Engine.Json.Float spec.mean_period);
    ("on_rate", Engine.Json.Float spec.on_rate);
    ("rate", Engine.Json.Float spec.rate);
    ("load", Engine.Json.Float spec.load);
    ("topology", Engine.Json.Str spec.topology);
    ("discipline", Engine.Json.Str spec.discipline);
    ("buffer", Engine.Json.Int spec.buffer);
    ("chunk", Engine.Json.Int spec.chunk);
    ("seed", Engine.Json.Int spec.seed);
    ("workers", Engine.Json.Int spec.workers);
  ]

let worker_arg spec ~index =
  Engine.Json.to_string
    (Engine.Json.Obj (("index", Engine.Json.Int index) :: spec_json_fields spec))

let spec_of_json json =
  match Engine.Json.parse json with
  | Error e -> Error ("bad worker spec: " ^ e)
  | Ok j -> (
    let int k = Option.bind (Engine.Json.member k j) Engine.Json.to_int_opt in
    let flt k = Option.bind (Engine.Json.member k j) Engine.Json.to_float_opt in
    let str k = Option.bind (Engine.Json.member k j) Engine.Json.to_str_opt in
    match
      ( (str "model", flt "events", int "replicas", int "sources", flt "beta",
         flt "mean_period", flt "on_rate", flt "rate"),
        (flt "load", str "topology", str "discipline", int "buffer",
         int "chunk", int "seed", int "workers", int "index") )
    with
    | ( ( Some model, Some events, Some replicas, Some sources, Some beta,
          Some mean_period, Some on_rate, Some rate ),
        ( Some load, Some topology, Some discipline, Some buffer, Some chunk,
          Some seed, Some workers, Some index ) ) ->
      Ok
        ( { model; events; replicas; sources; beta; mean_period; on_rate;
            rate; load; topology; discipline; buffer; chunk; seed; workers },
          index )
    | _ -> Error "bad worker spec: missing field")

let worker_entry json =
  match spec_of_json json with
  | Error e ->
    prerr_endline ("netsim-worker: " ^ e);
    2
  | Ok (spec, index) -> (
    match plan spec with
    | exception Invalid_argument e ->
      prerr_endline ("netsim-worker: " ^ e);
      2
    | plan_ -> (
      try
        set_binary_mode_out stdout true;
        let t0 = Unix.gettimeofday () in
        let done_ = ref 0 and events = ref 0 in
        let r = ref index in
        while !r < spec.replicas do
          let part = compute_replica ~spec ~plan:plan_ !r in
          output_string stdout (Engine.Frame.encode (replica_frame part));
          flush stdout;
          incr done_;
          events := !events + part.q_events;
          r := !r + spec.workers
        done;
        output_string stdout
          (Engine.Frame.encode
             (done_frame ~replicas:!done_ ~events:!events
                ~wall_s:(Unix.gettimeofday () -. t0)
                ~rss_kb:
                  (match Engine.Procstat.peak_rss_kb () with
                  | Some kb -> kb
                  | None -> -1)));
        flush stdout;
        0
      with e ->
        Printf.eprintf "netsim-worker %d: %s\n%!" index (Printexc.to_string e);
        3))

(* ---------------- coordinator side ---------------- *)

let absorb_worker ~spec ~parts (o : Engine.Farm.outcome) =
  let err = ref None in
  let note_err m = if !err = None then err := Some m in
  List.iter
    (fun f ->
      if !err = None then
        match decode_frame f with
        | Error m -> note_err m
        | Ok (D_replica p) ->
          if p.q_index < 0 || p.q_index >= spec.replicas then
            note_err "replica index out of range"
          else if parts.(p.q_index) <> None then
            note_err (Printf.sprintf "replica %d shipped twice" p.q_index)
          else parts.(p.q_index) <- Some p
        | Ok (D_done _) -> ())
    o.frames;
  if !err = None && not (Engine.Farm.ok o) then
    note_err
      (match o.failure with
      | Some m -> m
      | None -> Engine.Farm.status_to_string o.status);
  match !err with
  | None -> []
  | Some reason ->
    [ Printf.sprintf "worker %d (pid %d) %s: %s" o.index o.pid
        (if o.stalled then "stalled" else "died")
        reason ]

let run ~exe spec =
  let plan_ = plan spec in
  let outcomes =
    Engine.Farm.run ~exe
      ~argv:(fun i -> [| exe; "netsim-worker"; worker_arg spec ~index:i |])
      ~workers:spec.workers
      ~is_final:(fun f -> f.Engine.Frame.kind = kind_done)
      ()
  in
  let parts = Array.make spec.replicas None in
  let failures =
    List.concat_map (absorb_worker ~spec ~parts) outcomes
  in
  if failures <> [] then Error (String.concat "; " failures)
  else begin
    let missing = ref [] in
    Array.iteri (fun i p -> if p = None then missing := i :: !missing) parts;
    match !missing with
    | _ :: _ ->
      Error
        (Printf.sprintf "missing replica%s %s"
           (if List.length !missing > 1 then "s" else "")
           (String.concat ", " (List.rev_map string_of_int !missing)))
    | [] -> Ok (merge_parts ~plan:plan_ (Array.map Option.get parts))
  end

(* The full workers=1 computational path — replica simulation, frame
   encode + decode, replica-order merge — without process management,
   pinned against [run] by the tests. *)
let run_inline spec =
  let plan_ = plan spec in
  let parts =
    Array.init spec.replicas (fun r ->
        let p = compute_replica ~spec ~plan:plan_ r in
        match Engine.Frame.decode (Engine.Frame.encode (replica_frame p)) 0 with
        | Ok (f, _) -> (
          match decode_frame f with
          | Ok (D_replica p) -> p
          | Ok (D_done _) | Error _ ->
            failwith "netsim inline: frame round-trip failed")
        | Error e -> failwith (Engine.Frame.error_to_string e))
  in
  merge_parts ~plan:plan_ parts

(* Deliberately omits the worker count and any timing: stdout must be
   byte-identical at any --workers. *)
let pp fmt spec r =
  let plan_ = plan spec in
  Format.fprintf fmt
    "netsim model=%s events=%g replicas=%d topology=%s discipline=%s \
     buffer=%d seed=%d@."
    spec.model spec.events spec.replicas spec.topology spec.discipline
    spec.buffer spec.seed;
  Format.fprintf fmt "  packets       %d@." r.total_events;
  Format.fprintf fmt "  service       %.6g s/pkt  (load %.2f, lambda %g pkt/s)@."
    plan_.service spec.load plan_.lambda;
  Array.iteri
    (fun l (ml : merged_link) ->
      Format.fprintf fmt "  link %d  util %.6f  drop-hash %08x@." l ml.m_util
        (ml.m_hash land 0xffffffff);
      Array.iteri
        (fun c (mc : merged_class) ->
          Format.fprintf fmt
            "    class %d  served %d  dropped %d  loss %.6f  wait mean %.6g \
             max %.6g  p50 %.6g p99 %.6g p999 %.6g@."
            c mc.c_served mc.c_dropped mc.c_loss mc.c_mean_wait mc.c_max_wait
            mc.c_p50 mc.c_p99 mc.c_p999)
        ml.m_classes)
    r.links

(** Third wave of extension experiments: the buffer-sizing consequence
    of Section VIII, run on the {!Queueing.Network} fast path.
    Registered as x-buffer-sizing. *)

type bs_row = {
  bs_model : string;  (** ["poisson"] or ["onoff"]. *)
  bs_disc : string;  (** ["droptail"] or ["red"]. *)
  bs_buffer : int;
  bs_loss : float;  (** dropped / offered. *)
  bs_p99 : float;
  bs_p999 : float;  (** Waiting-time quantiles, both classes merged. *)
}

val bs_buffers : int list
(** The swept buffer sizes. *)

val buffer_sizing_data : Prng.Rng.t -> bs_row list
(** One buffered link at rho = 0.8 with deterministic service, offered
    the same 128 pkt/s mean load from a Poisson stream and from 64
    Pareto ON/OFF sources (beta 1.5); sweep {!bs_buffers} under
    drop-tail and RED. Every cell of a model replays the same arrival
    sample path, so loss is monotone in the buffer by construction. *)

val buffer_sizing : Engine.Task.ctx -> unit

type spec = {
  model : string;
  events : float;
  rate : float;
  bin : float;
  beta : float;
  chunk : int;
  seed : int;
  materialized : bool;
  wavelet : bool;
}

let default =
  {
    model = "poisson";
    events = 1e6;
    rate = 1000.;
    bin = 1.;
    beta = 1.5;
    chunk = 65536;
    seed = 42;
    materialized = false;
    wavelet = true;
  }

(* How many generation shards a wave materialises at once. Fixed (never
   derived from the jobs budget) so the shard layout — and therefore the
   byte output — is identical at any [--jobs]; [Engine.Par.map] already
   guarantees order- and budget-independent results within a wave. *)
let wave_width = 8

type result = {
  bins : int;
  total : float;  (* events actually counted *)
  mean : float;
  h_vt : Lrd.Hurst.estimate;
  h_rs : Lrd.Hurst.estimate;
  h_wav : Lrd.Wavelet.estimate option;
      (* [None] when disabled by the spec or too few bins/octaves *)
  count_sketch : Stats.Quantile_sketch.t;
      (* per-bin count quantiles; identical on both analysis paths *)
  chunks : int;  (* chunks pushed through the pyramid *)
  levels : int;  (* dyadic cascade depth *)
  resident : int;  (* peak floats resident in the pyramid *)
}

(* Same accuracy as the farm's per-bin sketches, so the count-q report
   lines are directly comparable across drivers. *)
let sketch_accuracy = 0.01

let rs_max_block n_bins = Int.max 1 (Int.min 32768 (n_bins / 4))

(* Shared read-out: the analysis sinks every model's count chunks feed.
   Registering [default_levels n_bins] up front makes every variance-time
   level exact, so the streamed estimate equals the materialized one. *)
let analysis_sinks n_bins =
  let levels = Timeseries.Counts.default_levels n_bins in
  let pyr = Timeseries.Pyramid.create ~levels () in
  let rs = Lrd.Hurst.rs_sink ~max_block:(rs_max_block n_bins) () in
  let total =
    Timeseries.Sink.fold ~init:0. ~f:(fun acc c ->
        Array.fold_left ( +. ) acc c)
  in
  let sketch = Stats.Quantile_sketch.create ~accuracy:sketch_accuracy () in
  let sketch_sink =
    Timeseries.Sink.make ~name:"count-sketch"
      ~push:(Array.iter (Stats.Quantile_sketch.add sketch))
      ~finish:(fun () -> sketch)
      ()
  in
  let sink =
    Timeseries.Sink.tee (Timeseries.Sink.of_pyramid pyr)
      (Timeseries.Sink.tee rs (Timeseries.Sink.tee total sketch_sink))
  in
  (levels, sink)

let wavelet_of_pyramid pyr =
  match Lrd.Wavelet.estimate_of_pyramid pyr with
  | e -> Some e
  | exception Invalid_argument _ -> None

let result_of ~wavelet ~levels ~n_bins (pyr, (h_rs, (total, sketch))) =
  {
    bins = n_bins;
    total;
    mean = Timeseries.Pyramid.mean pyr;
    h_vt = Lrd.Hurst.variance_time_of_pyramid ~levels pyr;
    h_rs;
    h_wav = (if wavelet then wavelet_of_pyramid pyr else None);
    count_sketch = sketch;
    chunks = Timeseries.Pyramid.chunks pyr;
    levels = Timeseries.Pyramid.depth pyr;
    resident = Timeseries.Pyramid.resident_floats pyr;
  }

(* Poisson: independent per-shard event streams on bin-aligned windows,
   generated [wave_width] shards at a time across the [Par] budget and
   folded into the counting sink in shard order. Every shard draws from
   [Task.derive_rng ~seed "stream#c"], so the sample path depends only on
   (seed, rate, bin, chunk, bins) — not on scheduling. Shards are sized
   to hold ~[chunk] expected events each, so a wave keeps
   O(wave_width * chunk) floats in flight whatever the event density. *)
let poisson_shard_bins ~rate ~bin ~chunk =
  Int.max 1 (int_of_float (Float.round (float_of_int chunk /. (rate *. bin))))

let poisson_shard ~seed ~rate ~bin ~shard_bins ~n_bins c =
  let lo_bin = c * shard_bins in
  let hi_bin = Int.min n_bins (lo_bin + shard_bins) in
  let rng = Engine.Task.derive_rng ~seed (Printf.sprintf "stream#%d" c) in
  let duration = float_of_int (hi_bin - lo_bin) *. bin in
  let events = Traffic.Poisson_proc.homogeneous ~rate ~duration rng in
  Traffic.Arrival.shift (float_of_int lo_bin *. bin) events

let poisson_waves ~seed ~rate ~bin ~chunk ~n_bins f =
  let shard_bins = poisson_shard_bins ~rate ~bin ~chunk in
  let n_shards = (n_bins + shard_bins - 1) / shard_bins in
  let w = ref 0 in
  while !w < n_shards do
    let upto = Int.min n_shards (!w + wave_width) in
    let shards = List.init (upto - !w) (fun i -> !w + i) in
    let pieces =
      Engine.Par.map (poisson_shard ~seed ~rate ~bin ~shard_bins ~n_bins) shards
    in
    List.iter f pieces;
    w := upto
  done

let run_poisson spec =
  let n_bins =
    Int.max 1 (int_of_float (Float.round (spec.events /. spec.rate /. spec.bin)))
  in
  let levels, analysis = analysis_sinks n_bins in
  let sink =
    Timeseries.Sink.counts ~bin:spec.bin ~n_bins ~chunk:spec.chunk analysis
  in
  poisson_waves ~seed:spec.seed ~rate:spec.rate ~bin:spec.bin ~chunk:spec.chunk
    ~n_bins (Timeseries.Sink.push sink);
  (n_bins, levels, Timeseries.Sink.finish sink)

let run_counts spec iter =
  let n_bins = Int.max 1 (int_of_float (Float.round spec.events)) in
  let levels, sink = analysis_sinks n_bins in
  iter ~n_bins (Timeseries.Sink.push sink);
  (n_bins, levels, Timeseries.Sink.finish sink)

let pareto_location ~beta = if beta > 1. then (beta -. 1.) /. beta else 1.

let onoff_sources spec =
  List.init 16 (fun _ ->
      Traffic.Onoff.pareto_source ~beta:spec.beta
        ~mean_period:(50. *. spec.bin) ~on_rate:spec.rate)

let stream spec =
  let rng () = Engine.Task.derive_rng ~seed:spec.seed "stream" in
  match spec.model with
  | "poisson" -> run_poisson spec
  | "pareto" ->
    run_counts spec (fun ~n_bins push ->
        Lrd.Pareto_count.iter_count_chunks ~chunk:spec.chunk ~beta:spec.beta
          ~a:1. ~bin:spec.bin ~bins:n_bins (rng ()) push)
  | "mginf" ->
    run_counts spec (fun ~n_bins push ->
        let service =
          Dist.Pareto.sample
            (Dist.Pareto.create
               ~location:(pareto_location ~beta:spec.beta)
               ~shape:spec.beta)
        in
        Traffic.Mg_inf.iter_chunks ~chunk:spec.chunk ~rate:spec.rate ~service
          ~dt:spec.bin ~n:n_bins (rng ()) push)
  | "onoff" ->
    run_counts spec (fun ~n_bins push ->
        Traffic.Onoff.iter_chunks ~chunk:spec.chunk
          ~sources:(onoff_sources spec) ~dt:spec.bin ~n:n_bins (rng ()) push)
  | m ->
    invalid_arg
      (Printf.sprintf
         "Streaming.stream: unknown model %S (want poisson|pareto|mginf|onoff)"
         m)

(* The materialized baseline: the same sample path built as one big
   array, analysed through the pre-streaming entry points
   ([Counts.of_events] / [Hurst.variance_time] / [Hurst.rescaled_range]).
   Used by [make stream-smoke] to check the streamed estimates agree. *)
let materialize spec =
  let counts =
    match spec.model with
    | "poisson" ->
      let n_bins =
        Int.max 1
          (int_of_float (Float.round (spec.events /. spec.rate /. spec.bin)))
      in
      let pieces = ref [] in
      poisson_waves ~seed:spec.seed ~rate:spec.rate ~bin:spec.bin
        ~chunk:spec.chunk ~n_bins (fun a -> pieces := a :: !pieces);
      let events = Array.concat (List.rev !pieces) in
      Timeseries.Counts.of_events ~bin:spec.bin
        ~t_end:(float_of_int n_bins *. spec.bin)
        events
    | "pareto" ->
      let n_bins = Int.max 1 (int_of_float (Float.round spec.events)) in
      Lrd.Pareto_count.count_process ~beta:spec.beta ~a:1. ~bin:spec.bin
        ~bins:n_bins
        (Engine.Task.derive_rng ~seed:spec.seed "stream")
    | "mginf" ->
      let n_bins = Int.max 1 (int_of_float (Float.round spec.events)) in
      let service =
        Dist.Pareto.sample
          (Dist.Pareto.create
             ~location:(pareto_location ~beta:spec.beta)
             ~shape:spec.beta)
      in
      Traffic.Mg_inf.count_process ~rate:spec.rate ~service ~dt:spec.bin
        ~n:n_bins
        (Engine.Task.derive_rng ~seed:spec.seed "stream")
    | "onoff" ->
      let n_bins = Int.max 1 (int_of_float (Float.round spec.events)) in
      Traffic.Onoff.count_process ~sources:(onoff_sources spec) ~dt:spec.bin
        ~n:n_bins
        (Engine.Task.derive_rng ~seed:spec.seed "stream")
    | m -> invalid_arg (Printf.sprintf "Streaming.materialize: unknown model %S" m)
  in
  let n_bins = Array.length counts in
  let h_vt = Lrd.Hurst.variance_time counts in
  let h_rs =
    if n_bins >= 32 then Lrd.Hurst.rescaled_range ~max_block:(rs_max_block n_bins) counts
    else { Lrd.Hurst.h = nan; slope = nan; r2 = nan }
  in
  let h_wav =
    if spec.wavelet && n_bins >= 16 then
      match Lrd.Wavelet.estimate counts with
      | e -> Some e
      | exception Invalid_argument _ -> None
    else None
  in
  (* The identical sketch the streamed path builds: the chunking only
     changes add order, and bucket increments commute. *)
  let count_sketch = Stats.Quantile_sketch.create ~accuracy:sketch_accuracy () in
  Array.iter (Stats.Quantile_sketch.add count_sketch) counts;
  {
    bins = n_bins;
    total = Array.fold_left ( +. ) 0. counts;
    mean = Stats.Descriptive.mean counts;
    h_vt;
    h_rs;
    h_wav;
    count_sketch;
    chunks = 0;
    levels = 0;
    resident = n_bins;
  }

let run spec =
  if spec.materialized then materialize spec
  else
    let n_bins, levels, out = stream spec in
    result_of ~wavelet:spec.wavelet ~levels ~n_bins out

let pp fmt spec r =
  Format.fprintf fmt "stream model=%s events=%g bins=%d bin=%g seed=%d%s@."
    spec.model spec.events r.bins spec.bin spec.seed
    (if spec.materialized then " (materialized)" else "");
  Format.fprintf fmt "  total-count   %.0f@." r.total;
  Format.fprintf fmt "  mean/bin      %.6f@." r.mean;
  Format.fprintf fmt "  H(var-time)   %.6f  (slope %.6f, r2 %.4f)@."
    r.h_vt.Lrd.Hurst.h r.h_vt.Lrd.Hurst.slope r.h_vt.Lrd.Hurst.r2;
  Format.fprintf fmt "  H(R/S)        %.6f  (r2 %.4f)@." r.h_rs.Lrd.Hurst.h
    r.h_rs.Lrd.Hurst.r2;
  if spec.wavelet then
    (match r.h_wav with
    | Some w ->
      Format.fprintf fmt
        "  H(wavelet)    %.6f  (slope %.6f, r2 %.4f, se %.4f, j %d..%d)@."
        w.Lrd.Wavelet.h w.Lrd.Wavelet.slope w.Lrd.Wavelet.r2
        w.Lrd.Wavelet.stderr_h w.Lrd.Wavelet.j_lo w.Lrd.Wavelet.j_hi
    | None -> Format.fprintf fmt "  H(wavelet)    n/a@.");
  (let q = Stats.Quantile_sketch.quantiles r.count_sketch in
   match q [ 0.5; 0.9; 0.99; 0.999 ] with
   | [ p50; p90; p99; p999 ] ->
     Format.fprintf fmt
       "  count-q       p50=%.6g p90=%.6g p99=%.6g p999=%.6g  (rel-err <= \
        %g)@."
       p50 p90 p99 p999
       (Stats.Quantile_sketch.accuracy r.count_sketch)
   | _ -> ());
  if not spec.materialized then
    Format.fprintf fmt "  pyramid       chunks=%d levels=%d resident-floats=%d@."
      r.chunks r.levels r.resident

(* ------------------------- windowed estimation ---------------------- *)

module Window = struct
  type kind = Tumbling | Sliding

  type estimate = {
    seq : int;
    upto : int;
    covered : int;
    h : Lrd.Hurst.estimate;
    hw : float;  (* rolling wavelet H; nan when too few octaves *)
    rate : float;
    alpha : float;
    q50 : float;  (* per-bin count quantiles over the covered window, *)
    q99 : float;  (* from the panes' mergeable sketches (1% accuracy) *)
    q999 : float;
  }

  (* One tumbling pane: a dyadic-ladder pyramid (no registered levels, so
     every snapshot merge is alignment-legal and every variance-time
     level exact) plus the pane's top-[k] bin counts for the Hill tail
     read-out. *)
  type pane = {
    pyr : Timeseries.Pyramid.t;
    top : float array;
    mutable tn : int;  (* filled slots in [top] *)
    mutable tmin : int;  (* index of the smallest filled slot *)
    sk : Stats.Quantile_sketch.t;  (* the pane's per-bin count sketch *)
  }

  type t = {
    kind : kind;
    window : int;  (* pane size in bins; a power of two *)
    cadence : int;  (* sliding emit period; divides [window] *)
    bin : float;
    emit : estimate -> unit;
    mutable cur : pane;
    mutable prev : Timeseries.Pyramid.snapshot option;
    mutable prev_top : float array;  (* completed pane's top-k, sorted desc *)
    mutable prev_sk : Stats.Quantile_sketch.t option;
        (* completed pane's sketch; merged with the current partial
           pane's for the sliding read-out, like the pyramid snapshot *)
    mutable fill : int;  (* bins in [cur] *)
    mutable since : int;  (* bins since the last sliding emit *)
    mutable total : int;  (* bins consumed overall *)
    mutable seq : int;  (* estimates emitted *)
  }

  let ceil_pow2 n =
    let p = ref 1 in
    while !p < n do
      p := !p lsl 1
    done;
    !p

  let fresh_pane k =
    {
      pyr = Timeseries.Pyramid.create ();
      top = Array.make k neg_infinity;
      tn = 0;
      tmin = 0;
      sk = Stats.Quantile_sketch.create ~accuracy:sketch_accuracy ();
    }

  let create ~kind ~window ?cadence ?(top_k = 64) ~bin ~emit () =
    if window < 16 then
      invalid_arg
        (Printf.sprintf "Streaming.Window.create: window = %d (want >= 16)"
           window);
    if bin <= 0. then
      invalid_arg
        (Printf.sprintf "Streaming.Window.create: bin = %g (want > 0)" bin);
    if top_k < 2 then
      invalid_arg
        (Printf.sprintf "Streaming.Window.create: top_k = %d (want >= 2)" top_k);
    (* Power-of-two panes make the pane merge unconditionally exact
       (count of the full pane has maximal 2-adic valuation); a
       power-of-two cadence then divides the pane, so emits and pane
       rotations never straddle. *)
    let window = ceil_pow2 window in
    let cadence =
      match cadence with
      | None -> Int.max 1 (window / 4)
      | Some c ->
        if c < 1 then
          invalid_arg
            (Printf.sprintf "Streaming.Window.create: cadence = %d (want >= 1)"
               c);
        Int.min window (ceil_pow2 c)
    in
    {
      kind;
      window;
      cadence;
      bin;
      emit;
      cur = fresh_pane top_k;
      prev = None;
      prev_top = [||];
      prev_sk = None;
      fill = 0;
      since = 0;
      total = 0;
      seq = 0;
    }

  let window t = t.window
  let cadence t = t.cadence
  let bins t = t.total

  let pane_offer p v =
    if p.tn < Array.length p.top then begin
      p.top.(p.tn) <- v;
      if v < p.top.(p.tmin) then p.tmin <- p.tn;
      p.tn <- p.tn + 1
    end
    else if v > p.top.(p.tmin) then begin
      p.top.(p.tmin) <- v;
      (* O(k) rescan only on replacement of the minimum. *)
      for i = 0 to p.tn - 1 do
        if p.top.(i) < p.top.(p.tmin) then p.tmin <- i
      done
    end

  let sorted_desc_top p =
    let a = Array.sub p.top 0 p.tn in
    Array.sort (fun x y -> Float.compare y x) a;
    a

  (* Hill tail index over the window's largest bin counts: uses the top
     [k] order statistics with the (k+1)-th as threshold, needing at
     least 8 positive exceedances of a positive threshold to bother. *)
  let hill_of_tops tops =
    let k = Array.length tops - 1 in
    if k < 8 || tops.(k) <= 0. then nan else Stats.Fit.hill tops ~k

  let merge_desc a b keep =
    let out = Array.make (Int.min keep (Array.length a + Array.length b)) 0. in
    let i = ref 0 and j = ref 0 in
    for o = 0 to Array.length out - 1 do
      if
        !j >= Array.length b
        || (!i < Array.length a && a.(!i) >= b.(!j))
      then begin
        out.(o) <- a.(!i);
        incr i
      end
      else begin
        out.(o) <- b.(!j);
        incr j
      end
    done;
    out

  (* Dyadic variance-time ladder for a window of [covered] bins: every
     level is exact in the pane pyramids, and capping at [covered / 8]
     keeps >= 8 blocks under the shallowest fitted point. *)
  let vt_levels covered =
    let rec go m acc = if m > covered / 8 then List.rev acc else go (2 * m) (m :: acc) in
    go 1 []

  let estimate_of t pyr tops sketch covered =
    let levels = vt_levels covered in
    let h =
      if List.length levels < 3 then { Lrd.Hurst.h = nan; slope = nan; r2 = nan }
      else Lrd.Hurst.variance_time_of_pyramid ~levels pyr
    in
    t.seq <- t.seq + 1;
    let q = Stats.Quantile_sketch.quantile sketch in
    {
      seq = t.seq;
      upto = t.total;
      covered;
      h;
      hw =
        (match Lrd.Wavelet.estimate_of_pyramid pyr with
        | e -> e.Lrd.Wavelet.h
        | exception Invalid_argument _ -> nan);
      rate = Timeseries.Pyramid.mean pyr /. t.bin;
      alpha = hill_of_tops tops;
      q50 = q 0.5;
      q99 = q 0.99;
      q999 = q 0.999;
    }

  let emit_sliding t =
    let k = Array.length t.cur.top in
    let cur_top = sorted_desc_top t.cur in
    match t.prev with
    | None ->
      if t.fill >= 16 then
        t.emit (estimate_of t t.cur.pyr cur_top t.cur.sk t.fill)
    | Some prev ->
      (* Full previous pane + current partial pane: the rolling window
         covers the last [window + fill] bins. The merge replays
         concatenation exactly (see {!Timeseries.Pyramid.merge_into});
         the sketch merge is bucket-wise and order-free. *)
      let p = Timeseries.Pyramid.of_snapshot prev in
      Timeseries.Pyramid.merge_into p (Timeseries.Pyramid.snapshot t.cur.pyr);
      let tops = merge_desc t.prev_top cur_top k in
      let sk =
        match t.prev_sk with
        | None -> t.cur.sk
        | Some prev_sk -> Stats.Quantile_sketch.merge prev_sk t.cur.sk
      in
      t.emit (estimate_of t p tops sk (t.window + t.fill))

  let rotate t =
    (match t.kind with
    | Tumbling ->
      t.emit (estimate_of t t.cur.pyr (sorted_desc_top t.cur) t.cur.sk t.window)
    | Sliding ->
      t.prev <- Some (Timeseries.Pyramid.snapshot t.cur.pyr);
      t.prev_top <- sorted_desc_top t.cur;
      t.prev_sk <- Some t.cur.sk);
    t.cur <- fresh_pane (Array.length t.cur.top);
    t.fill <- 0

  let push_slice t xs pos len =
    let pos = ref pos and len = ref len in
    while !len > 0 do
      let room = t.window - t.fill in
      let take = Int.min !len room in
      let take =
        match t.kind with
        | Sliding -> Int.min take (t.cadence - t.since)
        | Tumbling -> take
      in
      Timeseries.Pyramid.push_slice t.cur.pyr xs !pos take;
      for i = !pos to !pos + take - 1 do
        pane_offer t.cur xs.(i);
        Stats.Quantile_sketch.add t.cur.sk xs.(i)
      done;
      t.fill <- t.fill + take;
      t.total <- t.total + take;
      pos := !pos + take;
      len := !len - take;
      (match t.kind with
      | Sliding ->
        t.since <- t.since + take;
        if t.since = t.cadence then begin
          emit_sliding t;
          t.since <- 0
        end
      | Tumbling -> ());
      if t.fill = t.window then rotate t
    done

  let push t xs = push_slice t xs 0 (Array.length xs)

  let sink t =
    Timeseries.Sink.make ~name:"window"
      ~push:(fun chunk -> push t chunk)
      ~finish:(fun () -> t)
      ()
end

(** Packet-level reproductions: Table II, Fig. 3 (interarrival CDFs),
    Fig. 4 (dot plots), Fig. 5 (TELNET variance-time), Fig. 6 (5 s
    counts), Fig. 7 (FULL-TEL), Figs. 10-11 (burst dominance). *)

val lbl_pkt_names : string list
val wrl_names : string list

val table2 : Engine.Task.ctx -> unit

type fig3_curves = {
  grid : float array;  (** Interarrival values (s), log-spaced. *)
  trace_cdf : float array;
  tcplib_cdf : float array;
  exp_geometric_cdf : float array;  (** Fit #1: matched geometric mean. *)
  exp_arithmetic_cdf : float array;  (** Fit #2: matched arithmetic mean. *)
  geometric_mean : float;
  arithmetic_mean : float;
}

val fig3_data : unit -> fig3_curves
val fig3 : Engine.Task.ctx -> unit

val fig4_data : unit -> float array * float array
(** Packet times of two simulated 2000 s connections: (Tcplib
    interarrivals, exponential mean-1.1 interarrivals). *)

val fig4 : Engine.Task.ctx -> unit

val fig5_data : unit -> (string * Timeseries.Variance_time.curve) list
(** Variance-time curves for TRACE / TCPLIB / EXP / VAR-EXP, built from
    the LBL-PKT-2 stand-in's TELNET connections re-synthesised under each
    scheme (0.1 s bins). *)

val fig5 : Engine.Task.ctx -> unit

type fig6_result = {
  trace_counts : float array;  (** TELNET packets per 5 s interval. *)
  exp_counts : float array;
  trace_mean : float;
  trace_variance : float;
  exp_mean : float;
  exp_variance : float;
}

val fig6_data : unit -> fig6_result
val fig6 : Engine.Task.ctx -> unit

val fig7_data : unit -> (string * Timeseries.Variance_time.curve) list
(** Trace vs three FULL-TEL model runs (second hour of two-hour runs). *)

val fig7 : Engine.Task.ctx -> unit

type burst_dominance = {
  trace_name : string;
  n_bursts : int;
  minutes : float array;  (** Minute index midpoints. *)
  total_rate : float array;  (** Bytes per minute, all FTPDATA. *)
  top2_rate : float array;  (** Bytes per minute from the largest 2%. *)
  top05_rate : float array;
  share_top2 : float;  (** Fraction of bytes in the top 2% of bursts. *)
  share_top05 : float;
}

val fig10_data : unit -> burst_dominance list
(** LBL PKT traces. *)

val fig10 : Engine.Task.ctx -> unit

val fig11_data : unit -> burst_dominance list
(** DEC WRL traces. *)

val fig11 : Engine.Task.ctx -> unit

(** The [wanpoisson serve] driver: live rolling analysis of an event
    stream with drift detection.

    Counts flow from a source — stdin event times, or a generated
    process — through a {!Streaming.Window} manager that republishes
    rolling estimates (variance-time Hurst, Hill tail index, event
    rate) at a fixed cadence, in O(log window + top_k) state per pane.
    Three self-calibrating CUSUM monitors ({!Stats.Cusum}) watch the
    estimate stream; when one trips, the driver prints a drift record
    and raises an [Engine.Log] [serve.drift] structured warning naming
    the metric, side, accumulated statistic and calibration target.

    Sources:
    - ["splice"] (default): first half Poisson, second half Pareto
      ON/OFF tuned to the {e same marginal rate} — an injected
      correlation-structure regime change that the H monitor, not the
      rate monitor, should flag;
    - ["poisson"] / ["onoff"]: the stationary halves alone;
    - ["diurnal"]: Poisson with the paper's Fig. 1 WWW hourly profile
      replayed as a compressed rate envelope (daily average = [rate]).
      The rolling variance-time H absorbs the envelope as spurious
      long memory while the rolling wavelet H ([hw]) stays near 0.5 —
      the live demonstration of why the logscale diagram is the
      estimator to trust under nonstationarity;
    - ["stdin"]: newline-separated non-decreasing event times (blank
      lines and [#] comments skipped), binned incrementally with no
      horizon needed up front.

    Every estimate record also carries rolling per-bin count quantiles
    ([q50]/[q99]/[q999]) read from the window panes'
    {!Stats.Quantile_sketch}es, and the stdin source summarises the true
    inter-arrival distribution ([ia50]/[ia99]/[ia999]) from a sketch fed
    with successive event-time differences.

    Output is deterministic for a fixed seed: estimates, drifts and the
    final summary as JSONL ([emit = "jsonl"]) or aligned text. *)

type spec = {
  source : string;  (** splice | poisson | onoff | diurnal | stdin *)
  events : float;  (** generated sources: expected event count *)
  rate : float;  (** events per time unit *)
  bin : float;  (** bin width (s) *)
  beta : float;  (** Pareto shape for the ON/OFF source *)
  chunk : int;  (** count-buffer size *)
  seed : int;
  window : int;  (** window size in bins (rounded up to a power of 2) *)
  cadence : int;  (** bins between rolling estimates *)
  sliding : bool;  (** sliding (default) or tumbling windows *)
  top_k : int;  (** order statistics retained for the Hill read-out *)
  emit : string;  (** jsonl | text *)
  h_drift : float;  (** CUSUM slack for the H monitor *)
  h_threshold : float;  (** CUSUM decision interval for H *)
  rate_drift : float;  (** slack for the rate monitor (log2 scale) *)
  rate_threshold : float;
  alpha_drift : float;  (** slack for the tail-index monitor *)
  alpha_threshold : float;
  warmup : int;  (** estimates averaged into each monitor's baseline *)
}

val default : spec

type summary = {
  bins : int;
  total : float;  (** events counted *)
  estimates : int;
  drifts : int;
  last : Streaming.Window.estimate option;
  interarrival : Stats.Quantile_sketch.t option;
      (** True inter-arrival quantile sketch (1% accuracy) — [Some] for
          the ["stdin"] source only, where raw event times (not just bin
          counts) pass through the driver. Its p50/p99/p999 are appended
          to the summary record ([ia50]/[ia99]/[ia999]) when at least
          one inter-arrival was observed. *)
}

val run : ?fmt:Format.formatter -> spec -> summary
(** Stream, estimate, detect; returns the end-of-stream summary (also
    printed as the final output record). Raises [Invalid_argument] on an
    unknown [source], a malformed or non-monotone stdin event time, or
    window parameters {!Streaming.Window.create} rejects. *)

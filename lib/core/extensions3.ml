(* ------------------------------------------------------------------ *)
(* Buffer sizing under Poisson vs heavy-tailed input (Section VIII)     *)

(* Section VIII's operational punchline: a switch provisioned from a
   Poisson model of its input will size buffers far too small. Offer
   the SAME mean load (rho = 0.8, deterministic service) to one
   buffered link from (a) a Poisson stream and (b) a superposition of
   Pareto ON/OFF sources, sweep the buffer, and read loss and the
   waiting-time tail per discipline. The Poisson column collapses to
   ~zero loss within a few dozen slots; the heavy-tailed column keeps
   losing packets and growing its p99/p999 wait long past that. *)

type bs_row = {
  bs_model : string;
  bs_disc : string;
  bs_buffer : int;
  bs_loss : float;
  bs_p99 : float;
  bs_p999 : float;
}

let bs_buffers = [ 2; 8; 32; 128 ]

(* One link, both classes folded together (class is src land 1). *)
let bs_cell ~model ~disc_name ~disc ~buffer ~lambda ~horizon ~sources rng =
  let net =
    Queueing.Network.create ~seed:buffer
      ~topology:(Queueing.Network.Tandem 1) ~discipline:disc ~buffer
      ~services:[| 0.8 /. lambda |] ()
  in
  (match model with
  | "poisson" ->
    let srcs = ref [||] in
    let count = ref 0 in
    Traffic.Poisson_proc.iter_chunks ~rate:lambda ~duration:horizon rng
      (fun times ->
        let len = Array.length times in
        if Array.length !srcs < len then srcs := Array.make len 0;
        let s = !srcs in
        for j = 0 to len - 1 do
          s.(j) <- !count + j
        done;
        Queueing.Network.push_chunk net ~times ~srcs:s ~pos:0 ~len;
        count := !count + len)
  | _ ->
    Traffic.Superpose.iter ~sources ~horizon rng (fun times srcs len ->
        Queueing.Network.push_chunk net ~times ~srcs ~pos:0 ~len));
  let stats = (Queueing.Network.finish net).(0) in
  let c0 = stats.Queueing.Network.classes.(0)
  and c1 = stats.Queueing.Network.classes.(1) in
  let served = c0.Queueing.Network.served + c1.Queueing.Network.served in
  let dropped = c0.Queueing.Network.dropped + c1.Queueing.Network.dropped in
  let offered = served + dropped in
  let sk =
    Stats.Quantile_sketch.merge c0.Queueing.Network.sketch
      c1.Queueing.Network.sketch
  in
  let q p =
    if Stats.Quantile_sketch.count sk = 0 then 0.
    else Stats.Quantile_sketch.quantile sk p
  in
  {
    bs_model = model;
    bs_disc = disc_name;
    bs_buffer = buffer;
    bs_loss =
      (if offered = 0 then 0.
       else float_of_int dropped /. float_of_int offered);
    bs_p99 = q 0.99;
    bs_p999 = q 0.999;
  }

let buffer_sizing_data rng =
  (* 16 Pareto ON/OFF sources, each 16 pkt/s while ON, ON half the time
     in expectation: mean rate 128 pkt/s. The Poisson stream offers the
     identical mean rate; service 0.8 / 128 puts both at rho = 0.8. Few
     fast sources with long (mean 50 s, beta 1.5) periods make the rate
     excess persistent — the regime where buffers stop helping. *)
  let lambda = 128. in
  let horizon = 4000. in
  let sources =
    List.init 16 (fun _ ->
        Traffic.Onoff.pareto_source ~beta:1.5 ~mean_period:50. ~on_rate:16.)
  in
  (* Every cell of a model replays the same arrival sample path (a copy
     of that model's base stream), so loss is monotone in the buffer by
     construction and the sweep isolates the buffer, not the noise. *)
  let poisson_base = Prng.Rng.split rng in
  let onoff_base = Prng.Rng.split rng in
  List.concat_map
    (fun model ->
      let base = if model = "poisson" then poisson_base else onoff_base in
      List.concat_map
        (fun (disc_name, disc_of_buffer) ->
          List.map
            (fun buffer ->
              bs_cell ~model ~disc_name
                ~disc:(disc_of_buffer buffer)
                ~buffer ~lambda ~horizon ~sources (Prng.Rng.copy base))
            bs_buffers)
        [
          ("droptail", fun _ -> Queueing.Network.Drop_tail);
          ("red", fun b -> Queueing.Network.Red (Netsim.red_of_buffer b));
        ])
    [ "poisson"; "onoff" ]

let buffer_sizing ctx =
  let fmt = Engine.Task.formatter ctx in
  Report.heading fmt
    "Extension (S8): buffer sizing — Poisson vs heavy-tailed input at the \
     same mean load";
  let rows = buffer_sizing_data (Engine.Task.rng ctx) in
  Report.table fmt
    ~headers:[ "model"; "discipline"; "buffer"; "loss"; "p99 wait"; "p999 wait" ]
    (List.map
       (fun r ->
         [
           r.bs_model;
           r.bs_disc;
           string_of_int r.bs_buffer;
           Printf.sprintf "%.5f" r.bs_loss;
           Printf.sprintf "%.4f" r.bs_p99;
           Printf.sprintf "%.4f" r.bs_p999;
         ])
       rows);
  (* The gap, in buffer-sizing terms: smallest swept buffer with loss
     below 0.01% for each model under droptail. *)
  let enough model =
    match
      List.find_opt
        (fun r ->
          r.bs_model = model && r.bs_disc = "droptail" && r.bs_loss < 1e-4)
        rows
    with
    | Some r -> string_of_int r.bs_buffer
    | None -> Printf.sprintf "> %d" (List.fold_left Int.max 0 bs_buffers)
  in
  Report.kv fmt "buffer for <0.01% loss (poisson)" "%s" (enough "poisson");
  Report.kv fmt "buffer for <0.01% loss (onoff)" "%s" (enough "onoff");
  Format.fprintf fmt
    "(same mean load, rho = 0.8: the Poisson column meets the loss target \
     with a handful of slots while the Pareto ON/OFF column still loses \
     packets at every swept buffer — provisioning from a Poisson model \
     undersizes the buffer)@."

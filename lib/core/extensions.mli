(** Extension experiments: the paper's open questions and proposed
    refinements, built out. Each has a data accessor and a printer
    (registered in {!Registry} with ids x-mgk, x-onoff, x-farima,
    x-wavelet, x-responder, x-tcp, x-admission, x-sync, x-ablate). *)

type mgk_row = {
  servers : string;  (** "inf" or the k. *)
  vt_h : float;
  mean_wait : float;
  mean_in_system : float;
}

val mgk_data : unit -> mgk_row list
(** Section VII-C's M/G/k proposal: limited capacity delays arrivals and
    weakens the self-similar fit but does "not eliminate the underlying
    large-scale correlations" — H stays far above 0.5 at every k. *)

val mgk : Engine.Task.ctx -> unit

type onoff_row = { beta : float; theory_h : float; vt_h : float }

val onoff_data : unit -> onoff_row list
(** The ON/OFF path to self-similarity (Section VII-B, after Willinger et
    al.): multiplexed sources with Pareto(beta) period lengths give
    H = (3 - beta) / 2. *)

val onoff : Engine.Task.ctx -> unit

type farima_result = {
  d_true : float;
  d_whittle : float;
  h_vt : float;
  beran_p_farima : float;  (** GoF of the fARIMA shape on fARIMA data. *)
  trace_d : float;  (** fARIMA d fitted to an LBL PKT aggregate (1 s). *)
  trace_beran_farima : float;
  trace_beran_fgn : float;
}

val farima_data : unit -> farima_result

val farima : Engine.Task.ctx -> unit
(** Section VII-D names fractional ARIMA as a candidate when fGn is
    rejected; this validates the fARIMA generator/estimator and compares
    fGn vs fARIMA goodness-of-fit on an aggregate trace. *)

type wavelet_row = { label : string; h_expected : float option; h_wavelet : float }

val wavelet_data : unit -> wavelet_row list
val wavelet : Engine.Task.ctx -> unit

type responder_result = {
  originator_packets : int;
  responder_packets : int;
  originator_vt_h : float;
  responder_vt_h : float;
  originator_var_1s : float;
  responder_var_1s : float;
}

val responder_data : unit -> responder_result

val responder : Engine.Task.ctx -> unit
(** The open modeling task of Sections I/VIII: the responder stream
    (echoes + heavy-tailed command output) is burstier than the
    originator stream it answers. *)

type tcp_result = {
  flows : int;
  delivered : int;
  drops : int;
  utilisation : float;
  egress_ad_pass : bool;  (** A2 exponentiality of egress interarrivals. *)
  egress_vt_h : float;
  rtt_lag_acf : float;  (** Count autocorrelation at the dominant RTT lag. *)
  mean_lag_acf : float;  (** Average |acf| at non-RTT lags, for contrast. *)
}

val tcp_data : unit -> tcp_result

val tcp : Engine.Task.ctx -> unit
(** Section VII-C mechanics, made concrete: heavy-tailed TCP transfers
    through a droptail bottleneck produce packet departures that are not
    Poisson, carry RTT-scale periodicity (ack clocking), and stay
    long-range correlated despite congestion control. *)

type admission_row = {
  durations : string;
  admitted_fraction : float;
  overload_fraction : float;
  peak_utilisation : float;
  longest_overload : float;
  mean_overload_episode : float;
}

val admission_data : unit -> admission_row list

val admission : Engine.Task.ctx -> unit
(** Section VIII: a measurement-based admission controller is "easily
    misled following a long period of fairly low traffic rates" when
    flow durations are heavy-tailed. *)

type sync_result = {
  timer_acf_peak : float;  (** NNTP count ACF at the timer lag. *)
  poisson_acf_peak : float;  (** Same lag, rate-matched Poisson. *)
}

val sync_data : unit -> sync_result

val sync : Engine.Task.ctx -> unit
(** Timer-driven traffic carries periodic structure "impossible with
    Poisson models" (Section I, citing Floyd & Jacobson). *)

val ablations : Engine.Task.ctx -> unit
(** The DESIGN.md section-6 ablations: A2 significance level, A2 vs
    chi-square power (the Appendix-A justification), variance-time bin
    width, burst cutoff, and the minimum-interarrivals threshold. *)

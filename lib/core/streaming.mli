(** The [wanpoisson stream] driver: one-pass LRD analysis of traces that
    never materialise.

    A model generates its count series in chunks ({!Traffic.Poisson_proc},
    {!Lrd.Pareto_count}, {!Traffic.Mg_inf}, {!Traffic.Onoff}); the chunks
    flow through one {!Timeseries.Sink} tee into the aggregation pyramid
    (variance-time curve), the R/S sink and a running total — so a
    10^8-event Poisson trace is analysed in O(levels x chunk) memory.

    Poisson generation is sharded: bin-aligned windows holding ~[chunk]
    expected events each are generated [wave_width] at a time across the
    {!Engine.Par} budget and folded into the sink in shard order. Shard
    RNG streams come from [Task.derive_rng ~seed "stream#c"], and the
    wave width is a constant, so stdout is byte-identical at any
    [--jobs]. Because every {!Timeseries.Counts.default_levels} level is
    registered in the pyramid up front, the streamed variance-time (and
    R/S) estimates match the materialized ones on the same sample path
    to rounding — the pyramid's decomposed subscribers sum block
    boundary runs whose parenthesisation depends on the chunking, so
    agreement is to ~1 ulp rather than bit-exact. [make stream-smoke]
    checks equal event totals and Hurst agreement within the 0.03
    acceptance band; the test suite pins the 1e-9 relative bound. *)

type spec = {
  model : string;  (** poisson | pareto | mginf | onoff *)
  events : float;
      (** poisson: expected event count (bins = events/rate/bin);
          other models: the number of count bins to sample. *)
  rate : float;  (** poisson / mginf arrival rate; onoff per-source ON rate *)
  bin : float;  (** bin width (s) *)
  beta : float;  (** Pareto shape for pareto / mginf / onoff *)
  chunk : int;  (** chunk size (bins or events) for the streaming path *)
  seed : int;
  materialized : bool;
      (** analyse the same sample path through the array entry points
          (O(bins) memory) instead of the sinks — the baseline the smoke
          test diffs against *)
  wavelet : bool;
      (** report the Abry-Veitch wavelet H (default true). The octave
          energies are accumulated by the pyramid either way (a fused
          ~3 flop/pair side effect of the cascade); this gates only the
          read-out and the report line. *)
}

val default : spec

type result = {
  bins : int;
  total : float;  (** events actually counted *)
  mean : float;
  h_vt : Lrd.Hurst.estimate;
  h_rs : Lrd.Hurst.estimate;
  h_wav : Lrd.Wavelet.estimate option;
      (** Abry-Veitch wavelet H from the streamed octave energies
          (batch [Lrd.Wavelet.estimate] when materialized — the same
          logscale diagram bit-for-bit on the same counts); [None] when
          disabled or the series is too short for 2 fitted octaves. *)
  count_sketch : Stats.Quantile_sketch.t;
      (** Per-bin count quantile sketch (1% accuracy). Bucket increments
          commute, so the streamed and materialized paths build the
          identical sketch on the same sample path — the count-q report
          line is byte-identical between them. *)
  chunks : int;  (** chunks pushed through the pyramid (0 if materialized) *)
  levels : int;  (** dyadic cascade depth (0 if materialized) *)
  resident : int;  (** peak floats resident in the pyramid *)
}

val run : spec -> result
(** Raises [Invalid_argument] on an unknown [model]. The onoff model's
    streaming and materialized paths are different (equally valid) sample
    paths — the streaming path gives each source a split RNG sub-stream;
    the other models agree bit for bit. *)

val pp : Format.formatter -> spec -> result -> unit
(** Deterministic fixed-precision report (what [wanpoisson stream]
    prints). *)

(** Windowed rolling estimation over a stream of count bins.

    A window manager consumes bin-count chunks and republishes rolling
    estimates — variance-time Hurst, Hill tail index of the marginal,
    event rate — without ever materialising the window. Both kinds are
    built from {e tumbling panes}: power-of-two-sized pyramids with a
    dyadic variance-time ladder, so reading a sliding window is one
    exact snapshot merge (full previous pane + partial current pane; see
    {!Timeseries.Pyramid.merge_into}) and never a moment subtraction.

    - [Tumbling]: one estimate per completed pane, covering exactly
      [window] bins.
    - [Sliding]: one estimate every [cadence] bins, covering the last
      [window + fill] bins (between [window] and [2 * window] once the
      first pane completes; the opening partial pane is estimated alone
      once it holds >= 16 bins).

    Memory is O(log window + top_k) per pane — the window itself is
    never stored. *)
module Window : sig
  type kind = Tumbling | Sliding

  type estimate = {
    seq : int;  (** 1-based estimate index. *)
    upto : int;  (** Bins consumed when this estimate was emitted. *)
    covered : int;  (** Bins the estimate covers (ending at [upto]). *)
    h : Lrd.Hurst.estimate;
        (** Variance-time Hurst over the window's dyadic ladder
            ([nan] when the window is too shallow for 3 levels). *)
    hw : float;
        (** Rolling Abry-Veitch wavelet H over the same merged window
            pyramid ([nan] when too few octaves) — the estimator that
            stays honest under diurnal drift, where the variance-time
            ladder absorbs the trend as spurious long memory. *)
    rate : float;  (** Events per time unit: mean bin count / bin width. *)
    alpha : float;
        (** Hill tail index over the window's top-[top_k] bin counts
            ([nan] when fewer than 9 positive exceedances). *)
    q50 : float;
        (** Rolling per-bin count quantiles over the covered window,
            read from the panes' {!Stats.Quantile_sketch}es (1%
            accuracy); the sliding read-out merges the previous pane's
            sketch with the current partial one, exactly like the
            pyramid snapshot. *)
    q99 : float;
    q999 : float;
  }

  type t

  val create :
    kind:kind ->
    window:int ->
    ?cadence:int ->
    ?top_k:int ->
    bin:float ->
    emit:(estimate -> unit) ->
    unit ->
    t
  (** [window] (bins) is rounded up to a power of two; [cadence]
      (sliding only; default [window / 4]) is rounded up to a power of
      two and clamped to [window], so it always divides the pane.
      [top_k] (default 64) bounds the tail read-out. Raises
      [Invalid_argument] when [window < 16], [bin <= 0], [cadence < 1]
      or [top_k < 2]. *)

  val push : t -> float array -> unit
  (** Feed bin counts; [emit] fires synchronously as boundaries pass. *)

  val push_slice : t -> float array -> int -> int -> unit

  val window : t -> int
  (** The effective (rounded) pane size. *)

  val cadence : t -> int

  val bins : t -> int
  (** Total bins consumed. *)

  val sink : t -> t Timeseries.Sink.t
  (** The manager as a chunked consumer ([finish] hands it back). *)
end

(** The [wanpoisson stream] driver: one-pass LRD analysis of traces that
    never materialise.

    A model generates its count series in chunks ({!Traffic.Poisson_proc},
    {!Lrd.Pareto_count}, {!Traffic.Mg_inf}, {!Traffic.Onoff}); the chunks
    flow through one {!Timeseries.Sink} tee into the aggregation pyramid
    (variance-time curve), the R/S sink and a running total — so a
    10^8-event Poisson trace is analysed in O(levels x chunk) memory.

    Poisson generation is sharded: bin-aligned windows holding ~[chunk]
    expected events each are generated [wave_width] at a time across the
    {!Engine.Par} budget and folded into the sink in shard order. Shard
    RNG streams come from [Task.derive_rng ~seed "stream#c"], and the
    wave width is a constant, so stdout is byte-identical at any
    [--jobs]. Because every {!Timeseries.Counts.default_levels} level is
    registered in the pyramid up front, the streamed variance-time (and
    R/S) estimates match the materialized ones on the same sample path
    to rounding — the pyramid's decomposed subscribers sum block
    boundary runs whose parenthesisation depends on the chunking, so
    agreement is to ~1 ulp rather than bit-exact. [make stream-smoke]
    checks equal event totals and Hurst agreement within the 0.03
    acceptance band; the test suite pins the 1e-9 relative bound. *)

type spec = {
  model : string;  (** poisson | pareto | mginf | onoff *)
  events : float;
      (** poisson: expected event count (bins = events/rate/bin);
          other models: the number of count bins to sample. *)
  rate : float;  (** poisson / mginf arrival rate; onoff per-source ON rate *)
  bin : float;  (** bin width (s) *)
  beta : float;  (** Pareto shape for pareto / mginf / onoff *)
  chunk : int;  (** chunk size (bins or events) for the streaming path *)
  seed : int;
  materialized : bool;
      (** analyse the same sample path through the array entry points
          (O(bins) memory) instead of the sinks — the baseline the smoke
          test diffs against *)
}

val default : spec

type result = {
  bins : int;
  total : float;  (** events actually counted *)
  mean : float;
  h_vt : Lrd.Hurst.estimate;
  h_rs : Lrd.Hurst.estimate;
  chunks : int;  (** chunks pushed through the pyramid (0 if materialized) *)
  levels : int;  (** dyadic cascade depth (0 if materialized) *)
  resident : int;  (** peak floats resident in the pyramid *)
}

val run : spec -> result
(** Raises [Invalid_argument] on an unknown [model]. The onoff model's
    streaming and materialized paths are different (equally valid) sample
    paths — the streaming path gives each source a split RNG sub-stream;
    the other models agree bit for bit. *)

val pp : Format.formatter -> spec -> result -> unit
(** Deterministic fixed-precision report (what [wanpoisson stream]
    prints). *)

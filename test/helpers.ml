(* Shared test utilities. *)

let rng ?(seed = 12345) () = Prng.Rng.create seed

let check_float_eps name eps expected actual =
  Alcotest.(check (float eps)) name expected actual

let check_close name ?(eps = 1e-9) expected actual =
  check_float_eps name eps expected actual

let check_true name cond = Alcotest.(check bool) name true cond
let check_false name cond = Alcotest.(check bool) name false cond
let check_int name expected actual = Alcotest.(check int) name expected actual

let tc name f = Alcotest.test_case name `Quick f

let prop ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen law)

(* Deterministic sample arrays for distribution checks. *)
let samples n f =
  let r = rng () in
  Array.init n (fun _ -> f r)

let mean xs = Stats.Descriptive.mean xs

(* Fixed-seed fGn fixture shared by the estimator-recovery sweeps: the
   seed is derived from the target parameter (scaled to an int) so each
   sweep point gets a distinct, reproducible sample path. *)
let fgn_fixture ?(seed_scale = 1e4) ?(n = 16384) h =
  Lrd.Fgn.generate ~h ~n (rng ~seed:(int_of_float (h *. seed_scale)) ())

(* Run [f] once per seed and count successes — the acceptance-rate
   pattern behind the Beran goodness-of-fit checks. *)
let acceptance_over_seeds ?(seeds = 20) f =
  let ok = ref 0 in
  for seed = 1 to seeds do
    if f (rng ~seed ()) then incr ok
  done;
  !ok

(* Check that [f ()] raises [Invalid_argument] whose message starts with
   [prefix] (exact messages carry bounds that tests shouldn't pin). *)
let check_invalid_arg name prefix f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument m ->
    if
      String.length m < String.length prefix
      || String.sub m 0 (String.length prefix) <> prefix
    then
      Alcotest.failf "%s: Invalid_argument %S does not start with %S" name m
        prefix

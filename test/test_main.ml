let () =
  Alcotest.run "paxfloyd"
    [
      Test_prng.suite;
      Test_special.suite;
      Test_dist.suite;
      Test_stats.suite;
      Test_stest.suite;
      Test_stest2.suite;
      Test_timeseries.suite;
      Test_lrd.suite;
      Test_lrd2.suite;
      Test_tcplib.suite;
      Test_traffic.suite;
      Test_trace.suite;
      Test_queueing.suite;
      Test_queueing2.suite;
      Test_tcpsim.suite;
      Test_extensions.suite;
      Test_misc.suite;
      Test_misc2.suite;
      Test_misc3.suite;
      Test_props.suite;
      Test_golden.suite;
      Test_core.suite;
      Test_figures.suite;
      Test_engine.suite;
    ]

(* Golden-value regression tests for the hot-path kernels.

   These pin the estimator outputs for fixed seeds to 1e-6 (captured
   from the reference implementations before the PR-2 kernel rewrites:
   table-driven Whittle objective, half-word xoshiro step, Pareto
   sampler fast paths, k-way arrival merge). Any rewrite of those
   kernels must keep reproducing these numbers — the registry's
   byte-identity guarantee depends on it. *)

open Helpers

let tol = 1e-6

(* One fGn draw shared by the estimator tests: h = 0.8, n = 2048,
   seed 11. *)
let xs = lazy (Lrd.Fgn.generate ~h:0.8 ~n:2048 (Prng.Rng.create 11))

let test_whittle_golden () =
  let w = Lrd.Whittle.estimate (Lazy.force xs) in
  check_float_eps "whittle h" tol 0.795401368021 w.Lrd.Whittle.h;
  check_float_eps "whittle stderr" tol 0.020655219950 w.Lrd.Whittle.stderr;
  check_float_eps "whittle objective" tol (-2.222587370650) w.Lrd.Whittle.objective;
  check_false "interior minimum" w.Lrd.Whittle.at_boundary

let test_whittle_objective_agrees () =
  (* The table-driven evaluator must match the reference objective at
     interior and near-boundary thetas. *)
  let pgram = Timeseries.Periodogram.compute (Lazy.force xs) in
  let fast = Lrd.Whittle.fgn_objective_fn pgram in
  List.iter
    (fun h ->
      check_float_eps
        (Printf.sprintf "objective at h=%g" h)
        1e-9 (Lrd.Whittle.objective pgram h) (fast h))
    [ 0.02; 0.3; 0.5; 0.795; 0.98 ]

let test_beran_golden () =
  let b = Lrd.Beran.test ~h:0.795401368021 (Lazy.force xs) in
  check_float_eps "beran t" tol 1.890917346867 b.Lrd.Beran.t_stat;
  check_float_eps "beran p" tol 0.081077162294 b.Lrd.Beran.p_value

let test_variance_time_golden () =
  let counts = Array.map (fun x -> x +. 10.) (Lazy.force xs) in
  let fit =
    Timeseries.Variance_time.slope ~min_m:1
      (Timeseries.Variance_time.curve counts)
  in
  check_float_eps "variance-time H" tol 0.765777725655
    (Timeseries.Variance_time.hurst_of_slope fit.Stats.Regression.slope)

let test_farima_golden () =
  let fa = Lrd.Farima.whittle_d (Lazy.force xs) in
  check_float_eps "farima d" tol 0.356481681034 fa.Lrd.Whittle.h

let test_wavelet_golden () =
  let w = Lrd.Wavelet.estimate (Lazy.force xs) in
  check_float_eps "wavelet h" tol 0.846551741929 w.Lrd.Wavelet.h;
  check_float_eps "wavelet slope" tol 0.693103483858 w.Lrd.Wavelet.slope;
  check_float_eps "wavelet stderr" tol 0.032483993151 w.Lrd.Wavelet.stderr_h;
  check_int "wavelet j_lo" 2 w.Lrd.Wavelet.j_lo;
  check_int "wavelet j_hi" 8 w.Lrd.Wavelet.j_hi

let test_estimator_agreement_golden () =
  (* The x-estimators cross-check table: every (scenario, estimator)
     cell pinned, so the registry rendering stays byte-stable and the
     headline contrast — variance-time biased to 0.835 by the diurnal
     envelope while the wavelet holds 0.706 — cannot silently erode. *)
  let expected =
    [
      ("fGn H=0.5", 0.500749224703, 0.477120556001, 0.485507658220);
      ("fGn H=0.7", 0.698885524612, 0.654523053551, 0.627088045373);
      ("fGn H=0.9", 0.907030777745, 0.842043593067, 0.879929149752);
      ("Pareto ON/OFF beta=1.2", 0.989999573858, 0.896199795613,
       1.054368952950);
      ("fGn H=0.7 + diurnal trend", 0.717204134455, 0.834510028281,
       0.706492486871);
    ]
  in
  let rows = Core.Extensions2.estimators_data () in
  check_int "scenario count" (List.length expected) (List.length rows);
  List.iter2
    (fun (name, wh, vt, wav) (r : Core.Extensions2.estimators_row) ->
      Alcotest.(check string) "scenario" name r.Core.Extensions2.scenario;
      check_float_eps (name ^ " whittle") tol wh r.Core.Extensions2.e_whittle;
      check_float_eps (name ^ " variance-time") tol vt r.Core.Extensions2.e_vt;
      check_float_eps (name ^ " wavelet") tol wav
        r.Core.Extensions2.e_wavelet.Lrd.Wavelet.h)
    expected rows

let test_pareto_count_golden () =
  (* Exact integers: the count process must be bit-identical, not just
     close — fig14/fig15 bytes depend on it. *)
  let cp =
    Lrd.Pareto_count.count_process ~beta:1.0 ~a:1.0 ~bin:1e3 ~bins:1000
      (Prng.Rng.create 1000)
  in
  check_int "total arrivals" 54675
    (int_of_float (Array.fold_left ( +. ) 0. cp));
  Alcotest.(check (list int))
    "first ten bins"
    [ 133; 129; 114; 106; 181; 125; 84; 156; 14; 128 ]
    (List.init 10 (fun i -> int_of_float cp.(i)))

let test_pareto_count_clamp () =
  (* Arrivals landing exactly on (or, through float rounding, past) the
     end of the observation window must fold into the last bin instead
     of writing out of bounds: with bin = 1 every interarrival >= 1
     jumps many bins at once, which used to overrun. *)
  let bins = 8 in
  List.iter
    (fun beta ->
      let cp =
        Lrd.Pareto_count.count_process ~beta ~a:1.0 ~bin:1.0 ~bins
          (Prng.Rng.create 7)
      in
      check_int (Printf.sprintf "beta=%g length" beta) bins (Array.length cp);
      Array.iter (fun c -> check_true "non-negative count" (c >= 0.)) cp)
    [ 1.0; 1.2; 2.0 ]

let test_pareto_fast_paths () =
  (* The beta = 1 and beta = 2 closed forms must sample the same values
     as the generic quantile path (same u, same float expression). *)
  List.iter
    (fun beta ->
      let d = Dist.Pareto.create ~location:1.0 ~shape:beta in
      for i = 0 to 199 do
        let u = float_of_int i /. 200. in
        let generic = 1.0 *. ((1. -. u) ** (-1. /. beta)) in
        check_float_eps
          (Printf.sprintf "beta=%g quantile(%g)" beta u)
          1e-9 generic (Dist.Pareto.quantile d u)
      done)
    [ 1.0; 2.0 ]

let suite =
  ( "golden",
    [
      tc "whittle h/stderr/objective" test_whittle_golden;
      tc "whittle fast objective = reference" test_whittle_objective_agrees;
      tc "beran t/p" test_beran_golden;
      tc "variance-time H" test_variance_time_golden;
      tc "farima d" test_farima_golden;
      tc "wavelet h/slope/stderr" test_wavelet_golden;
      tc "estimator agreement table" test_estimator_agreement_golden;
      tc "pareto count process" test_pareto_count_golden;
      tc "pareto count clamp" test_pareto_count_clamp;
      tc "pareto fast paths" test_pareto_fast_paths;
    ] )

(* PR 9: Stats.Quantile_sketch — the deterministic mergeable quantile
   summary behind the farm partials, the FIFO sink and the serve
   read-outs. The tests pin the documented error model (exact rank,
   relative value error <= accuracy), the merge-tree invariance the
   byte-identical-stdout contract leans on, and the wire codec. *)

open Helpers

let sk ?accuracy xs =
  let t = Stats.Quantile_sketch.create ?accuracy () in
  Array.iter (Stats.Quantile_sketch.add t) xs;
  t

(* The documented bound: for 0 < q < 1 the sketch returns a value
   within [accuracy] relative error of the order statistic of rank
   ceil (q * n); q = 0 / q = 1 report the exact extremes. *)
let check_bound ~accuracy xs q =
  let t = sk ~accuracy xs in
  let v = Stats.Quantile_sketch.quantile t q in
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length xs in
  if q = 0. then check_true "q=0 exact" (v = sorted.(0))
  else if q = 1. then check_true "q=1 exact" (v = sorted.(n - 1))
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int n)) in
      Stdlib.min n (Stdlib.max 1 r)
    in
    let x = sorted.(rank - 1) in
    if Float.abs (v -. x) > (accuracy *. x) +. 1e-12 then
      Alcotest.failf "q=%g n=%d: sketch %.17g vs exact %.17g (acc %g)" q n v
        x accuracy
  end

let test_error_bound () =
  let r = rng ~seed:2024 () in
  let qs = [ 0.; 0.01; 0.25; 0.5; 0.9; 0.99; 0.999; 1. ] in
  for trial = 1 to 40 do
    let n = 1 + Prng.Rng.int r 2000 in
    let draw =
      match trial mod 4 with
      | 0 -> fun () -> Prng.Rng.float r (* uniform *)
      | 1 -> fun () -> -.Float.log (1e-300 +. Prng.Rng.float r) (* exp *)
      | 2 ->
        fun () -> (1e-3 +. Prng.Rng.float r) ** -2. (* heavy tail *)
      | _ -> fun () -> float_of_int (Prng.Rng.int r 5000) (* integers *)
    in
    let xs = Array.init n (fun _ -> draw ()) in
    let accuracy = if trial mod 2 = 0 then 0.01 else 0.05 in
    List.iter (check_bound ~accuracy xs) qs
  done

let test_zero_handling () =
  let t = sk [| 0.; 0.; 0.; 0. |] in
  check_true "all-zero median is 0" (Stats.Quantile_sketch.quantile t 0.5 = 0.);
  let m = sk [| 0.; 0.; 0.; 10.; 20. |] in
  (* rank ceil(0.5 * 5) = 3 <= 3 zeros *)
  check_true "zero-cell rank" (Stats.Quantile_sketch.quantile m 0.5 = 0.);
  check_true "above the zeros"
    (Float.abs (Stats.Quantile_sketch.quantile m 0.9 -. 20.) <= 0.2)

let test_empty_and_validation () =
  let t = Stats.Quantile_sketch.create () in
  check_true "empty quantile nan"
    (Float.is_nan (Stats.Quantile_sketch.quantile t 0.5));
  check_true "empty min nan" (Float.is_nan (Stats.Quantile_sketch.min t));
  check_true "empty mean nan" (Float.is_nan (Stats.Quantile_sketch.mean t));
  check_int "empty count" 0 (Stats.Quantile_sketch.count t);
  let rejects f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "accepted"
  in
  rejects (fun () -> Stats.Quantile_sketch.add t (-1.));
  rejects (fun () -> Stats.Quantile_sketch.add t Float.nan);
  rejects (fun () -> Stats.Quantile_sketch.add t Float.infinity);
  rejects (fun () -> Stats.Quantile_sketch.quantile t 1.5);
  rejects (fun () -> Stats.Quantile_sketch.create ~accuracy:0. ());
  rejects (fun () -> Stats.Quantile_sketch.create ~accuracy:0.6 ());
  rejects (fun () ->
      Stats.Quantile_sketch.merge
        (Stats.Quantile_sketch.create ~accuracy:0.01 ())
        (Stats.Quantile_sketch.create ~accuracy:0.02 ()))

let test_moments_exact () =
  let xs = Array.init 500 (fun i -> float_of_int (i * i mod 97)) in
  let t = sk xs in
  check_int "count" 500 (Stats.Quantile_sketch.count t);
  check_close "sum exact" (Array.fold_left ( +. ) 0. xs)
    (Stats.Quantile_sketch.sum t);
  check_true "min exact"
    (Stats.Quantile_sketch.min t = Array.fold_left Float.min infinity xs);
  check_true "max exact"
    (Stats.Quantile_sketch.max t
    = Array.fold_left Float.max neg_infinity xs)

(* Merge-tree invariance: shard sketches merged in any tree order equal
   the pooled single-pass sketch bit for bit in every field except
   [sum] — a float accumulation, associative only to the ulp — so the
   comparison blanks the sum's 8 codec bytes and checks it separately
   to relative 1e-12. Quantiles depend only on the invariant fields. *)
let sum_off = 2 + 1 + 8 + 8 + 8 + 8 + 8 (* codec offset of the sum f64 *)

let strip_sum s =
  String.sub s 0 sum_off
  ^ String.make 8 '\x00'
  ^ String.sub s (sum_off + 8) (String.length s - sum_off - 8)

let test_merge_tree_invariance () =
  let r = rng ~seed:7 () in
  for _ = 1 to 15 do
    let n = 200 + Prng.Rng.int r 2000 in
    let xs =
      Array.init n (fun _ -> -.Float.log (1e-300 +. Prng.Rng.float r) *. 50.)
    in
    let pooled = sk xs in
    let k = 2 + Prng.Rng.int r 6 in
    let shards =
      List.init k (fun s ->
          let lo = s * n / k and hi = (s + 1) * n / k in
          sk (Array.sub xs lo (hi - lo)))
    in
    let bytes t = strip_sum (Stats.Quantile_sketch.to_string t) in
    let check_sum name a b =
      let sa = Stats.Quantile_sketch.sum a
      and sb = Stats.Quantile_sketch.sum b in
      check_true name (Float.abs (sa -. sb) <= 1e-12 *. Float.abs sb)
    in
    (* left fold *)
    let left =
      List.fold_left Stats.Quantile_sketch.merge (List.hd shards)
        (List.tl shards)
    in
    (* right-leaning fold over the reversed shard list *)
    let right =
      List.fold_left Stats.Quantile_sketch.merge
        (List.hd (List.rev shards))
        (List.tl (List.rev shards))
    in
    (* balanced pairwise reduction *)
    let rec pairwise = function
      | [] -> assert false
      | [ t ] -> t
      | ts ->
        let rec pair = function
          | a :: b :: rest -> Stats.Quantile_sketch.merge a b :: pair rest
          | rest -> rest
        in
        pairwise (pair ts)
    in
    let balanced = pairwise shards in
    check_true "left fold = pooled" (bytes left = bytes pooled);
    check_true "reversed fold = pooled" (bytes right = bytes pooled);
    check_true "balanced tree = pooled" (bytes balanced = bytes pooled);
    check_sum "left fold sum ~ pooled" left pooled;
    check_sum "balanced sum ~ pooled" balanced pooled;
    (* and therefore the quantile read-outs are bit-identical *)
    List.iter
      (fun q ->
        check_true "quantiles invariant"
          (Int64.bits_of_float (Stats.Quantile_sketch.quantile left q)
          = Int64.bits_of_float (Stats.Quantile_sketch.quantile pooled q)
          && Int64.bits_of_float (Stats.Quantile_sketch.quantile balanced q)
             = Int64.bits_of_float (Stats.Quantile_sketch.quantile pooled q)))
      [ 0.; 0.01; 0.5; 0.99; 0.999; 1. ];
    (* merge_into leaves the source untouched *)
    let a = sk (Array.sub xs 0 (n / 2)) in
    let before = bytes a in
    ignore (Stats.Quantile_sketch.merge a pooled);
    check_true "merge leaves operands intact" (bytes a = before)
  done

let test_codec_roundtrip () =
  let r = rng ~seed:31 () in
  for trial = 1 to 20 do
    let n = Prng.Rng.int r 1000 in
    let xs =
      Array.init n (fun i ->
          if i mod 7 = 0 then 0. else Prng.Rng.float r *. 1e4)
    in
    let accuracy = if trial mod 2 = 0 then 0.01 else 0.03 in
    let t = sk ~accuracy xs in
    let wire = Stats.Quantile_sketch.to_string t in
    match Stats.Quantile_sketch.of_string wire with
    | Error e -> Alcotest.fail e
    | Ok t' ->
      check_true "re-encode byte-identical"
        (Stats.Quantile_sketch.to_string t' = wire);
      check_int "count survives" (Stats.Quantile_sketch.count t)
        (Stats.Quantile_sketch.count t');
      List.iter2
        (fun a b ->
          check_true "quantiles bit-identical"
            (Int64.bits_of_float a = Int64.bits_of_float b))
        (Stats.Quantile_sketch.quantiles t [ 0.; 0.5; 0.99; 1. ])
        (Stats.Quantile_sketch.quantiles t' [ 0.; 0.5; 0.99; 1. ])
  done

let test_codec_rejects () =
  let t = sk (Array.init 300 (fun i -> float_of_int (1 + (i mod 40)))) in
  let wire = Stats.Quantile_sketch.to_string t in
  (* Every strict prefix is rejected (the bucket table length must match
     the header), as is trailing garbage. *)
  for len = 0 to String.length wire - 1 do
    match Stats.Quantile_sketch.of_string (String.sub wire 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "prefix of %d bytes accepted" len
  done;
  (match Stats.Quantile_sketch.of_string (wire ^ "\x00") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  let flip pos s =
    let b = Bytes.of_string s in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
    Bytes.to_string b
  in
  (match Stats.Quantile_sketch.of_string (flip 0 wire) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted");
  (match Stats.Quantile_sketch.of_string (flip 2 wire) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad version accepted");
  (* Corrupting a bucket count breaks the counts-sum-to-n check. *)
  (match Stats.Quantile_sketch.of_string
           (flip (String.length wire - 8) wire)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt bucket count accepted")

(* The FIFO pinned bound: the sink's sketch-backed p50/p99/p999 agree
   with the materialized waiting-time array within the sketch's
   documented rank-exact / value-relative bound. The Lindley recursion
   is replayed here so the exact order statistics are available. *)
let test_fifo_sketch_bound () =
  let r = rng ~seed:404 () in
  let n = 20_000 in
  let arrivals = Array.make n 0. in
  let t = ref 0. in
  for i = 0 to n - 1 do
    (* rho ~ 0.9: mean interarrival 1.0, service 0.9 *)
    t := !t +. -.Float.log (1e-300 +. Prng.Rng.float r);
    arrivals.(i) <- !t
  done;
  let service_time = 0.9 in
  (* exact waits via the same recursion *)
  let waits = Array.make n 0. in
  let last_dep = ref neg_infinity in
  for i = 0 to n - 1 do
    let start = Float.max arrivals.(i) !last_dep in
    waits.(i) <- start -. arrivals.(i);
    last_dep := start +. service_time
  done;
  Array.sort compare waits;
  let sink =
    Queueing.Fifo.sink ~service:(fun _ -> service_time) (rng ~seed:0 ())
  in
  (* push in uneven chunks to exercise the chunked path *)
  let pos = ref 0 in
  while !pos < n do
    let len = Stdlib.min (n - !pos) (1 + ((!pos / 100) mod 977)) in
    Timeseries.Sink.push sink (Array.sub arrivals !pos len);
    pos := !pos + len
  done;
  let s = Timeseries.Sink.finish sink in
  let exact =
    Queueing.Fifo.simulate_const ~arrivals ~service_time ()
  in
  check_int "served" n s.Queueing.Fifo.n;
  check_close "mean_wait exact" exact.Queueing.Fifo.mean_wait
    s.Queueing.Fifo.mean_wait;
  check_close "max_wait exact" exact.Queueing.Fifo.max_wait
    s.Queueing.Fifo.max_wait;
  let accuracy = 0.01 in
  List.iter
    (fun (q, got) ->
      let rank =
        Stdlib.min n (Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int n))))
      in
      let x = waits.(rank - 1) in
      if Float.abs (got -. x) > (accuracy *. x) +. 1e-12 then
        Alcotest.failf "p%g: sink %.17g vs exact rank stat %.17g" (q *. 100.)
          got x)
    [
      (0.5, s.Queueing.Fifo.p50_wait);
      (0.99, s.Queueing.Fifo.p99_wait);
      (0.999, s.Queueing.Fifo.p999_wait);
    ]

let suite =
  ( "sketch",
    [
      tc "quantile error bound" test_error_bound;
      tc "zero cell" test_zero_handling;
      tc "empty + argument validation" test_empty_and_validation;
      tc "exact moments" test_moments_exact;
      tc "merge-tree invariance (bit-exact)" test_merge_tree_invariance;
      tc "wire codec round-trip" test_codec_roundtrip;
      tc "wire codec rejects malformed input" test_codec_rejects;
      tc "fifo sink quantiles within documented bound"
        test_fifo_sketch_bound;
    ] )

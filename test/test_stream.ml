(* PR 5: streaming one-pass LRD analysis — the aggregation pyramid,
   chunked sinks, streaming producers, and the sharded stream driver. *)

open Helpers

let relative a b = Float.abs (a -. b) /. (Float.abs b +. 1e-300)

(* ---------------- mergeable moments ---------------- *)

let test_moments_welford () =
  let r = rng () in
  for _ = 1 to 50 do
    let n = 1 + Prng.Rng.int r 500 in
    let xs = Array.init n (fun _ -> Prng.Rng.float r -. 0.5) in
    let m = Timeseries.Moments.create () in
    Array.iter (fun x -> Timeseries.Moments.add m x) xs;
    check_int "count" n (Timeseries.Moments.count m);
    check_true "mean"
      (relative (Timeseries.Moments.mean m) (Stats.Descriptive.mean xs)
       < 1e-12);
    if n >= 2 then
      check_true "variance"
        (Float.abs
           (Timeseries.Moments.variance m -. Stats.Descriptive.variance xs)
         < 1e-12)
  done

let test_moments_merge () =
  let r = rng ~seed:7 () in
  for _ = 1 to 50 do
    let n = 2 + Prng.Rng.int r 400 in
    let xs = Array.init n (fun _ -> (10. *. Prng.Rng.float r) -. 5.) in
    let cut = 1 + Prng.Rng.int r (n - 1) in
    let a = Timeseries.Moments.create () and b = Timeseries.Moments.create () in
    Timeseries.Moments.add_slice a xs 0 cut;
    Timeseries.Moments.add_slice b xs cut (n - cut);
    Timeseries.Moments.merge_into a b;
    check_int "merged count" n (Timeseries.Moments.count a);
    check_true "merged mean"
      (relative (Timeseries.Moments.mean a) (Stats.Descriptive.mean xs)
       < 1e-12);
    check_true "merged variance"
      (relative
         (Timeseries.Moments.variance a)
         (Stats.Descriptive.variance xs)
       < 1e-9)
  done

(* ---------------- pyramid vs naive variance-time ---------------- *)

(* The tentpole property: for random series, random chunkings and random
   level ladders (dyadic or not), the pyramid's exact levels agree with
   the aggregate-per-level reference to 1e-9 relative. *)
let test_pyramid_matches_naive () =
  let r = rng ~seed:99 () in
  for _trial = 1 to 220 do
    let n = 2 + Prng.Rng.int r 2000 in
    let xs = Array.init n (fun _ -> 5. +. Prng.Rng.float r) in
    let levels =
      List.init
        (1 + Prng.Rng.int r 10)
        (fun _ -> 1 + Prng.Rng.int r (Int.max 1 (n / 2)))
      |> List.sort_uniq compare
    in
    let naive = Timeseries.Variance_time.curve_naive ~levels xs in
    let chunk = 1 + Prng.Rng.int r (n + 4) in
    let pyr = Timeseries.Pyramid.create ~levels () in
    let pos = ref 0 in
    while !pos < n do
      let len = Int.min chunk (n - !pos) in
      Timeseries.Pyramid.push_slice pyr xs !pos len;
      pos := !pos + len
    done;
    check_int "count" n (Timeseries.Pyramid.count pyr);
    Array.iter
      (fun (p : Timeseries.Variance_time.point) ->
        match Timeseries.Pyramid.stat pyr p.m with
        | None -> Alcotest.failf "level %d missing from pyramid" p.m
        | Some s ->
          check_true "exact" s.Timeseries.Pyramid.exact;
          check_int "blocks" (Array.length xs / p.m)
            s.Timeseries.Pyramid.blocks;
          let v =
            s.Timeseries.Pyramid.var_sum
            /. (float_of_int p.m *. float_of_int p.m)
          in
          if relative v p.variance > 1e-9 then
            Alcotest.failf "m=%d naive %.17g pyramid %.17g" p.m p.variance v)
      naive
  done

let test_curve_equals_naive_default_levels () =
  let r = rng ~seed:5 () in
  for _ = 1 to 30 do
    let n = 50 + Prng.Rng.int r 5000 in
    let xs = Array.init n (fun _ -> 1. +. Prng.Rng.float r) in
    let c = Timeseries.Variance_time.curve xs in
    let naive = Timeseries.Variance_time.curve_naive xs in
    check_int "points" (Array.length naive) (Array.length c);
    Array.iteri
      (fun i (p : Timeseries.Variance_time.point) ->
        check_int "m" p.m c.(i).Timeseries.Variance_time.m;
        check_true "normalised"
          (relative c.(i).Timeseries.Variance_time.normalised p.normalised
           < 1e-9))
      naive
  done

(* Chunk boundary edge cases: chunk=1, chunk=n, n not a multiple. *)
let test_pyramid_chunk_edges () =
  let r = rng ~seed:3 () in
  let n = 1037 in
  let xs = Array.init n (fun _ -> 2. +. Prng.Rng.float r) in
  let levels = [ 1; 2; 3; 7; 10; 32; 100 ] in
  let run chunk =
    let pyr = Timeseries.Pyramid.create ~levels () in
    let pos = ref 0 in
    while !pos < n do
      let len = Int.min chunk (n - !pos) in
      Timeseries.Pyramid.push_slice pyr xs !pos len;
      pos := !pos + len
    done;
    Timeseries.Variance_time.curve_of_pyramid ~levels pyr
  in
  let whole = run n in
  List.iter
    (fun chunk ->
      let c = run chunk in
      check_int (Printf.sprintf "points chunk=%d" chunk) (Array.length whole)
        (Array.length c);
      Array.iteri
        (fun i (p : Timeseries.Variance_time.point) ->
          check_true
            (Printf.sprintf "chunk=%d m=%d" chunk p.m)
            (relative p.normalised
               whole.(i).Timeseries.Variance_time.normalised
             < 1e-9))
        c)
    [ 1; 2; 64; 1000; 1036 ]

(* Unregistered non-dyadic levels are resampled from the nearest dyadic
   level and reported at the level actually served. *)
let test_pyramid_resampled_levels () =
  let r = rng ~seed:11 () in
  let xs = Array.init 4096 (fun _ -> 1. +. Prng.Rng.float r) in
  let pyr = Timeseries.Pyramid.create () in
  Timeseries.Pyramid.push pyr xs;
  (match Timeseries.Pyramid.stat pyr 100 with
  | None -> Alcotest.fail "no stat for level 100"
  | Some s ->
    check_false "not exact" s.Timeseries.Pyramid.exact;
    check_int "served nearest dyadic" 128 s.Timeseries.Pyramid.served);
  match Timeseries.Pyramid.stat pyr 64 with
  | None -> Alcotest.fail "no stat for level 64"
  | Some s ->
    check_true "dyadic exact" s.Timeseries.Pyramid.exact;
    check_int "served" 64 s.Timeseries.Pyramid.served

(* ---------------- sink combinators ---------------- *)

let test_sink_combinators () =
  let r = rng ~seed:21 () in
  let xs = Array.init 1000 (fun _ -> Prng.Rng.float r) in
  let round_trip =
    Timeseries.Sink.iter_array ~chunk:37 xs (Timeseries.Sink.to_array ())
  in
  check_true "to_array round trip" (round_trip = xs);
  check_int "length" 1000
    (Timeseries.Sink.iter_array ~chunk:64 xs (Timeseries.Sink.length ()));
  let total, n =
    Timeseries.Sink.iter_array ~chunk:100 xs
      (Timeseries.Sink.tee
         (Timeseries.Sink.fold ~init:0. ~f:(fun acc c ->
              Array.fold_left ( +. ) acc c))
         (Timeseries.Sink.length ()))
  in
  check_int "tee length" 1000 n;
  check_true "tee sum"
    (relative total (Array.fold_left ( +. ) 0. xs) < 1e-12);
  check_int "map" 2000
    (Timeseries.Sink.iter_array xs
       (Timeseries.Sink.map (fun n -> 2 * n) (Timeseries.Sink.length ())))

(* Sink.counts must agree with Counts.of_events for any chunking of any
   sorted event stream. *)
let test_sink_counts_matches_of_events () =
  let r = rng ~seed:31 () in
  for _ = 1 to 60 do
    let n_events = 1 + Prng.Rng.int r 3000 in
    let span = 10. +. (90. *. Prng.Rng.float r) in
    let events =
      Array.init n_events (fun _ -> span *. Prng.Rng.float r)
    in
    Array.sort Float.compare events;
    let bin = 0.05 +. Prng.Rng.float r in
    let n_bins = int_of_float (Float.floor (span /. bin)) in
    if n_bins > 0 then begin
      let reference =
        Timeseries.Counts.of_events ~bin ~t_end:span events
      in
      let chunk = 1 + Prng.Rng.int r (n_bins + 8) in
      let got =
        Timeseries.Sink.iter_array
          ~chunk:(1 + Prng.Rng.int r (n_events + 8))
          events
          (Timeseries.Sink.counts ~bin ~n_bins ~chunk
             (Timeseries.Sink.to_array ()))
      in
      check_int "bins" (Array.length reference) (Array.length got);
      if got <> reference then Alcotest.fail "count series diverged"
    end
  done

let test_sink_counts_rejects_unsorted () =
  let sink =
    Timeseries.Sink.counts ~bin:1. ~n_bins:10 (Timeseries.Sink.to_array ())
  in
  sink.Timeseries.Sink.push [| 1.; 2. |];
  Alcotest.check_raises "regressing time"
    (Invalid_argument
       "Sink.counts: event times must be non-decreasing (1.5 after 2)")
    (fun () -> sink.Timeseries.Sink.push [| 1.5 |])

(* ---------------- streaming producers vs array wrappers ------------- *)

(* Reference copy of the pre-streaming list-based Poisson generator. *)
let reference_poisson ~rate ~duration rng =
  if rate = 0. then [||]
  else begin
    let out = ref [] in
    let t = ref 0. in
    let continue = ref true in
    while !continue do
      t := !t -. (log (Prng.Rng.float_pos rng) /. rate);
      if !t < duration then out := !t :: !out else continue := false
    done;
    Array.of_list (List.rev !out)
  end

let test_poisson_wrapper_identical () =
  List.iter
    (fun (rate, duration, seed) ->
      let a =
        Traffic.Poisson_proc.homogeneous ~rate ~duration
          (Prng.Rng.create seed)
      in
      let r2 = Prng.Rng.create seed in
      let b = reference_poisson ~rate ~duration r2 in
      check_true "events identical" (a = b);
      let r1 = Prng.Rng.create seed in
      ignore (Traffic.Poisson_proc.homogeneous ~rate ~duration r1);
      check_int "draw count" (Prng.Rng.draw_count r2) (Prng.Rng.draw_count r1))
    [ (50., 100., 1); (1000., 10., 2); (0., 5., 3); (3., 0.01, 4) ]

let test_poisson_chunking_invariant () =
  let collect chunk =
    let r = Prng.Rng.create 77 in
    let out = ref [] in
    Traffic.Poisson_proc.iter_chunks ~chunk ~rate:200. ~duration:50. r
      (fun c -> out := Array.copy c :: !out);
    Array.concat (List.rev !out)
  in
  let whole = collect max_int in
  List.iter
    (fun chunk -> check_true "chunked = whole" (collect chunk = whole))
    [ 1; 7; 64; 10000 ]

let test_pareto_wrapper_identical () =
  List.iter
    (fun (beta, bins, seed) ->
      let r1 = Prng.Rng.create seed and r2 = Prng.Rng.create seed in
      let a =
        Lrd.Pareto_count.count_process ~beta ~a:1. ~bin:10. ~bins r1
      in
      (* chunked consumer with an adversarial chunk size *)
      let out = ref [] in
      Lrd.Pareto_count.iter_count_chunks ~chunk:17 ~beta ~a:1. ~bin:10. ~bins
        r2 (fun c -> out := Array.copy c :: !out);
      let b = Array.concat (List.rev !out) in
      check_int "bins" bins (Array.length b);
      check_true "counts identical" (a = b);
      check_int "draw count" (Prng.Rng.draw_count r1) (Prng.Rng.draw_count r2))
    [ (1., 500, 9); (1.5, 1000, 10); (0.5, 200, 11) ]

(* Reference copy of the pre-streaming difference-array M/G/inf. *)
let reference_mg_inf ~rate ~service ~dt ~n ?warmup rng =
  let span = float_of_int n *. dt in
  let warmup = match warmup with Some w -> w | None -> span in
  let horizon = warmup +. span in
  let diff = Array.make (n + 1) 0 in
  let index_of time =
    let k = Float.ceil ((time -. warmup) /. dt) in
    int_of_float (Float.max 0. k)
  in
  let t = ref 0. in
  let continue = ref true in
  while !continue do
    t := !t -. (log (Prng.Rng.float_pos rng) /. rate);
    if !t >= horizon then continue := false
    else begin
      let s = service rng in
      let dep = !t +. s in
      if dep > warmup then begin
        let i0 = Int.min n (index_of !t) in
        let i1 = Int.min n (index_of dep) in
        if i1 > i0 then begin
          diff.(i0) <- diff.(i0) + 1;
          diff.(i1) <- diff.(i1) - 1
        end
      end
    end
  done;
  let out = Array.make n 0. in
  let acc = ref 0 in
  for k = 0 to n - 1 do
    acc := !acc + diff.(k);
    out.(k) <- float_of_int !acc
  done;
  out

let test_mg_inf_wrapper_identical () =
  List.iter
    (fun (rate, beta, n, seed) ->
      let service =
        Dist.Pareto.sample (Dist.Pareto.create ~location:0.5 ~shape:beta)
      in
      let r1 = Prng.Rng.create seed and r2 = Prng.Rng.create seed in
      let a = Traffic.Mg_inf.count_process ~rate ~service ~dt:1. ~n r1 in
      let b = reference_mg_inf ~rate ~service ~dt:1. ~n r2 in
      check_true "counts identical" (a = b);
      check_int "rng end state" (Prng.Rng.draw_count r2)
        (Prng.Rng.draw_count r1))
    [ (5., 1.5, 400, 13); (0.5, 1.2, 1000, 14); (20., 1.9, 100, 15) ]

let test_mg_inf_chunking_invariant () =
  let collect chunk =
    let service =
      Dist.Pareto.sample (Dist.Pareto.create ~location:1. ~shape:1.4)
    in
    let r = Prng.Rng.create 55 in
    let out = ref [] in
    Traffic.Mg_inf.iter_chunks ~chunk ~rate:3. ~service ~dt:0.5 ~n:700 r
      (fun c -> out := Array.copy c :: !out);
    Array.concat (List.rev !out)
  in
  let whole = collect max_int in
  List.iter
    (fun chunk -> check_true "chunked = whole" (collect chunk = whole))
    [ 1; 13; 700 ]

let test_onoff_chunking_invariant () =
  let sources =
    List.init 5 (fun i ->
        Traffic.Onoff.pareto_source ~beta:1.4
          ~mean_period:(2. +. float_of_int i)
          ~on_rate:20.)
  in
  let collect chunk =
    let r = Prng.Rng.create 303 in
    let out = ref [] in
    Traffic.Onoff.iter_chunks ~chunk ~sources ~dt:0.25 ~n:2000 r (fun c ->
        out := Array.copy c :: !out);
    Array.concat (List.rev !out)
  in
  let whole = collect 2000 in
  check_int "bins" 2000 (Array.length whole);
  check_true "some events" (Array.exists (fun c -> c > 0.) whole);
  List.iter
    (fun chunk -> check_true "chunked = whole" (collect chunk = whole))
    [ 1; 9; 512; 1999 ]

(* ---------------- R/S sink ---------------- *)

let test_rs_sink_matches_rescaled_range () =
  let r = rng ~seed:41 () in
  for _ = 1 to 10 do
    let n = 300 + Prng.Rng.int r 3000 in
    let xs = Array.init n (fun _ -> Prng.Rng.float r) in
    let reference = Lrd.Hurst.rescaled_range xs in
    let sink = Lrd.Hurst.rs_sink ~max_block:(n / 4) () in
    let chunk = 1 + Prng.Rng.int r 200 in
    let got = Timeseries.Sink.iter_array ~chunk xs sink in
    (* same blocks, same order, same arithmetic: exactly equal *)
    check_true "h" (got.Lrd.Hurst.h = reference.Lrd.Hurst.h);
    check_true "r2" (got.Lrd.Hurst.r2 = reference.Lrd.Hurst.r2)
  done

let test_rs_sink_bounded_memory_estimate () =
  (* On an i.i.d. series long enough that the bounded ladder still spans
     three decades, the capped sink lands near H = 1/2 like the full
     estimator. *)
  let r = rng ~seed:43 () in
  let xs = Array.init 60_000 (fun _ -> Prng.Rng.float r) in
  let capped =
    Timeseries.Sink.iter_array xs (Lrd.Hurst.rs_sink ~max_block:8192 ())
  in
  let full = Lrd.Hurst.rescaled_range xs in
  check_true "both near 1/2"
    (Float.abs (capped.Lrd.Hurst.h -. full.Lrd.Hurst.h) < 0.05)

(* ---------------- FIFO sink ---------------- *)

let test_fifo_sink_matches_simulate () =
  let r = rng ~seed:51 () in
  for _ = 1 to 8 do
    let n = 200 + Prng.Rng.int r 2000 in
    let t = ref 0. in
    let arrivals =
      Array.init n (fun _ ->
          t := !t +. (0.9 *. Prng.Rng.float r);
          !t)
    in
    let buffer = if Prng.Rng.bool r then Some 5 else None in
    let service rng = 0.3 +. (0.5 *. Prng.Rng.float rng) in
    let reference =
      Queueing.Fifo.simulate ?buffer ~arrivals ~service (Prng.Rng.create 1)
    in
    let sink = Queueing.Fifo.sink ?buffer ~service (Prng.Rng.create 1) in
    let got =
      Timeseries.Sink.iter_array ~chunk:(1 + Prng.Rng.int r 100) arrivals sink
    in
    check_int "n" reference.Queueing.Fifo.n got.Queueing.Fifo.n;
    check_int "dropped" reference.Queueing.Fifo.dropped
      got.Queueing.Fifo.dropped;
    check_true "mean wait"
      (got.Queueing.Fifo.mean_wait = reference.Queueing.Fifo.mean_wait);
    check_true "mean sojourn"
      (got.Queueing.Fifo.mean_sojourn = reference.Queueing.Fifo.mean_sojourn);
    check_true "max wait"
      (got.Queueing.Fifo.max_wait = reference.Queueing.Fifo.max_wait);
    check_true "utilization"
      (got.Queueing.Fifo.utilization = reference.Queueing.Fifo.utilization);
    (* histogram p99: within one log-bin (2.3%) of the exact quantile,
       plus an absolute epsilon for near-zero waits *)
    check_true "p99 approx"
      (Float.abs (got.Queueing.Fifo.p99_wait -. reference.Queueing.Fifo.p99_wait)
       <= (0.03 *. reference.Queueing.Fifo.p99_wait) +. 1e-6)
  done

(* ---------------- invalid-argument guards ---------------- *)

let test_invalid_argument_guards () =
  let raises name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument msg ->
      check_true (name ^ " names value") (String.length msg > 0)
  in
  raises "of_events bin" (fun () ->
      Timeseries.Counts.of_events ~bin:0. ~t_end:10. [| 1. |]);
  raises "of_events range" (fun () ->
      Timeseries.Counts.of_events ~bin:1. ~t_end:0. [| 1. |]);
  raises "aggregate m" (fun () -> Timeseries.Counts.aggregate [| 1.; 2. |] 0);
  raises "curve empty" (fun () -> Timeseries.Variance_time.curve [||]);
  raises "curve zero mean" (fun () ->
      Timeseries.Variance_time.curve (Array.make 100 0.));
  raises "curve_naive zero mean" (fun () ->
      Timeseries.Variance_time.curve_naive (Array.make 100 0.));
  raises "rescaled_range short" (fun () ->
      Lrd.Hurst.rescaled_range (Array.make 31 1.));
  raises "rs_sink max_block" (fun () -> Lrd.Hurst.rs_sink ~max_block:0 ());
  raises "fifo sink empty" (fun () ->
      let sink =
        Queueing.Fifo.sink ~service:(fun _ -> 1.) (Prng.Rng.create 0)
      in
      sink.Timeseries.Sink.finish ())

(* ---------------- the stream driver ---------------- *)

let run_stream spec =
  let r = Core.Streaming.run spec in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Core.Streaming.pp fmt spec r;
  Format.pp_print_flush fmt ();
  (r, Buffer.contents buf)

let test_stream_jobs_deterministic () =
  let spec =
    { Core.Streaming.default with events = 2e5; rate = 500.; seed = 4242 }
  in
  let saved = Engine.Par.extra_domains () in
  Engine.Par.set_extra_domains 0;
  let _, seq = run_stream spec in
  Engine.Par.set_extra_domains 3;
  let _, par = run_stream spec in
  Engine.Par.set_extra_domains saved;
  check_true "byte-identical at any jobs" (String.equal seq par)

let test_stream_matches_materialized () =
  let spec =
    { Core.Streaming.default with events = 1e6; rate = 1000.; seed = 7 }
  in
  let streamed, _ = run_stream spec in
  let materialized, _ =
    run_stream { spec with Core.Streaming.materialized = true }
  in
  check_int "bins" materialized.Core.Streaming.bins
    streamed.Core.Streaming.bins;
  check_true "total"
    (streamed.Core.Streaming.total = materialized.Core.Streaming.total);
  (* same sample path + exact registered levels: equal, well inside the
     +/- 0.03 acceptance band *)
  check_true "H(vt) within 0.03"
    (Float.abs
       (streamed.Core.Streaming.h_vt.Lrd.Hurst.h
       -. materialized.Core.Streaming.h_vt.Lrd.Hurst.h)
     < 0.03);
  check_true "H(rs) within 0.03"
    (Float.abs
       (streamed.Core.Streaming.h_rs.Lrd.Hurst.h
       -. materialized.Core.Streaming.h_rs.Lrd.Hurst.h)
     < 0.03);
  check_true "pyramid chunked"
    (streamed.Core.Streaming.chunks > 0
    && streamed.Core.Streaming.resident < streamed.Core.Streaming.bins * 4)

let test_stream_chunk_memory () =
  (* Resident floats stay O(chunk + levels), far below the bin count. *)
  let spec =
    {
      Core.Streaming.default with
      events = 2e6;
      rate = 2.;
      bin = 0.1;
      chunk = 4096;
      seed = 12;
    }
  in
  let r, _ = run_stream spec in
  check_true "many bins" (r.Core.Streaming.bins >= 1_000_000);
  check_true "small resident"
    (r.Core.Streaming.resident < 12 * spec.Core.Streaming.chunk)

let suite =
  ( "stream",
    [
      tc "moments welford vs two-pass" test_moments_welford;
      tc "moments merge" test_moments_merge;
      tc "pyramid matches naive VT (220 random cases)"
        test_pyramid_matches_naive;
      tc "curve equals naive on default levels"
        test_curve_equals_naive_default_levels;
      tc "pyramid chunk edge cases" test_pyramid_chunk_edges;
      tc "pyramid resampled levels" test_pyramid_resampled_levels;
      tc "sink combinators" test_sink_combinators;
      tc "sink counts = Counts.of_events" test_sink_counts_matches_of_events;
      tc "sink counts rejects unsorted" test_sink_counts_rejects_unsorted;
      tc "poisson wrapper identical" test_poisson_wrapper_identical;
      tc "poisson chunking invariant" test_poisson_chunking_invariant;
      tc "pareto wrapper identical" test_pareto_wrapper_identical;
      tc "mg_inf wrapper identical" test_mg_inf_wrapper_identical;
      tc "mg_inf chunking invariant" test_mg_inf_chunking_invariant;
      tc "onoff chunking invariant" test_onoff_chunking_invariant;
      tc "rs sink = rescaled_range" test_rs_sink_matches_rescaled_range;
      tc "rs sink bounded-memory estimate"
        test_rs_sink_bounded_memory_estimate;
      tc "fifo sink = simulate" test_fifo_sink_matches_simulate;
      tc "invalid-argument guards" test_invalid_argument_guards;
      tc "stream driver byte-identical across jobs"
        test_stream_jobs_deterministic;
      tc "stream = materialized (1e6 events)" test_stream_matches_materialized;
      tc "stream resident memory O(chunk)" test_stream_chunk_memory;
    ] )

(* PR 5: streaming one-pass LRD analysis — the aggregation pyramid,
   chunked sinks, streaming producers, and the sharded stream driver. *)

open Helpers

let relative a b = Float.abs (a -. b) /. (Float.abs b +. 1e-300)

(* ---------------- mergeable moments ---------------- *)

let test_moments_welford () =
  let r = rng () in
  for _ = 1 to 50 do
    let n = 1 + Prng.Rng.int r 500 in
    let xs = Array.init n (fun _ -> Prng.Rng.float r -. 0.5) in
    let m = Timeseries.Moments.create () in
    Array.iter (fun x -> Timeseries.Moments.add m x) xs;
    check_int "count" n (Timeseries.Moments.count m);
    check_true "mean"
      (relative (Timeseries.Moments.mean m) (Stats.Descriptive.mean xs)
       < 1e-12);
    if n >= 2 then
      check_true "variance"
        (Float.abs
           (Timeseries.Moments.variance m -. Stats.Descriptive.variance xs)
         < 1e-12)
  done

let test_moments_merge () =
  let r = rng ~seed:7 () in
  for _ = 1 to 50 do
    let n = 2 + Prng.Rng.int r 400 in
    let xs = Array.init n (fun _ -> (10. *. Prng.Rng.float r) -. 5.) in
    let cut = 1 + Prng.Rng.int r (n - 1) in
    let a = Timeseries.Moments.create () and b = Timeseries.Moments.create () in
    Timeseries.Moments.add_slice a xs 0 cut;
    Timeseries.Moments.add_slice b xs cut (n - cut);
    Timeseries.Moments.merge_into a b;
    check_int "merged count" n (Timeseries.Moments.count a);
    check_true "merged mean"
      (relative (Timeseries.Moments.mean a) (Stats.Descriptive.mean xs)
       < 1e-12);
    check_true "merged variance"
      (relative
         (Timeseries.Moments.variance a)
         (Stats.Descriptive.variance xs)
       < 1e-9)
  done

(* ---------------- snapshot / merge algebra ---------------- *)

(* Push [xs.(pos .. pos+len-1)] in random chunks drawn from [r]. *)
let push_randomly r pyr xs pos len =
  let p = ref pos and stop = pos + len in
  while !p < stop do
    let take = Int.min (1 + Prng.Rng.int r 400) (stop - !p) in
    Timeseries.Pyramid.push_slice pyr xs !p take;
    p := !p + take
  done

let check_pyramids_agree ctx levels a b =
  List.iter
    (fun m ->
      match (Timeseries.Pyramid.stat a m, Timeseries.Pyramid.stat b m) with
      | None, None -> ()
      | Some sa, Some sb ->
        check_int (Printf.sprintf "%s m=%d blocks" ctx m)
          sb.Timeseries.Pyramid.blocks sa.Timeseries.Pyramid.blocks;
        check_true
          (Printf.sprintf "%s m=%d mean" ctx m)
          (relative sa.Timeseries.Pyramid.mean_sum
             sb.Timeseries.Pyramid.mean_sum
           < 1e-12);
        check_true
          (Printf.sprintf "%s m=%d var" ctx m)
          (relative sa.Timeseries.Pyramid.var_sum sb.Timeseries.Pyramid.var_sum
           < 1e-11)
      | Some _, None | None, Some _ ->
        Alcotest.failf "%s m=%d present in only one pyramid" ctx m)
    (1 :: levels)

(* Sharded snapshots Chan-merged equal the single-pass batch pyramid:
   power-of-two shards (any count, partial tail) on the dyadic ladder.
   Pushing a further tail into both pyramids afterwards proves the
   carry chain — not just the moments — survived the merge. *)
let test_pyramid_merge_matches_batch () =
  let r = rng ~seed:61 () in
  for _trial = 1 to 60 do
    let shard = 1 lsl (3 + Prng.Rng.int r 6) in
    let n_shards = 1 + Prng.Rng.int r 6 in
    let tail_in = Prng.Rng.int r shard in
    let n = (n_shards * shard) + tail_in in
    let extra = 1 + Prng.Rng.int r 500 in
    let xs = Array.init (n + extra) (fun _ -> 1. +. Prng.Rng.float r) in
    let levels = [ 2; 8; 64 ] in
    let batch = Timeseries.Pyramid.create ~levels () in
    push_randomly r batch xs 0 n;
    let merged = Timeseries.Pyramid.create ~levels () in
    let pos = ref 0 in
    while !pos < n do
      let len = Int.min shard (n - !pos) in
      let piece = Timeseries.Pyramid.create ~levels () in
      push_randomly r piece xs !pos len;
      Timeseries.Pyramid.merge_into merged (Timeseries.Pyramid.snapshot piece);
      pos := !pos + len
    done;
    check_int "merged count" n (Timeseries.Pyramid.count merged);
    check_pyramids_agree "merged" levels merged batch;
    (* carry state bit-for-bit: both continue identically *)
    push_randomly r batch xs n extra;
    Timeseries.Pyramid.push_slice merged xs n extra;
    check_pyramids_agree "post-merge push" levels merged batch
  done

(* Non-dyadic registered levels merge exactly when the left count is a
   multiple of the level (and of the decomposed subscriber's coarse
   alignment): left shard m * 2^p, right shard <= 2^p. Levels 3 and 6
   exercise the direct path, 33 and 132 the decomposed one. *)
let test_pyramid_merge_registered_levels () =
  let r = rng ~seed:67 () in
  let levels = [ 3; 6; 33; 132 ] in
  let lcm_levels = 132 in
  for _trial = 1 to 40 do
    let p = 3 + Prng.Rng.int r 4 in
    let left = lcm_levels * (1 lsl p) in
    let right = Prng.Rng.int r ((1 lsl p) + 1) in
    let extra = 1 + Prng.Rng.int r 700 in
    let n = left + right in
    let xs = Array.init (n + extra) (fun _ -> 2. +. Prng.Rng.float r) in
    let batch = Timeseries.Pyramid.create ~levels () in
    push_randomly r batch xs 0 n;
    let a = Timeseries.Pyramid.create ~levels () in
    push_randomly r a xs 0 left;
    let b = Timeseries.Pyramid.create ~levels () in
    push_randomly r b xs left right;
    let merged =
      Timeseries.Pyramid.merge
        (Timeseries.Pyramid.snapshot a)
        (Timeseries.Pyramid.snapshot b)
    in
    let merged = Timeseries.Pyramid.of_snapshot merged in
    check_int "merged count" n (Timeseries.Pyramid.count merged);
    check_pyramids_agree "registered merge" levels merged batch;
    push_randomly r batch xs n extra;
    push_randomly r merged xs n extra;
    check_pyramids_agree "registered post-push" levels merged batch
  done

let test_pyramid_merge_misaligned_raises () =
  let xs = Array.init 100 (fun i -> float_of_int i) in
  let mk lo len levels =
    let p = Timeseries.Pyramid.create ~levels () in
    Timeseries.Pyramid.push_slice p xs lo len;
    p
  in
  (* 12 raw then 8 more: 8 > 2^v2(12) = 4 *)
  let dst = mk 0 12 [] in
  (match
     Timeseries.Pyramid.merge_into dst
       (Timeseries.Pyramid.snapshot (mk 12 8 []))
   with
  | () -> Alcotest.fail "expected Invalid_argument (dyadic misalignment)"
  | exception Invalid_argument _ -> ());
  (* registered level 3 does not divide the left count 8 *)
  let dst = mk 0 8 [ 3 ] in
  (match
     Timeseries.Pyramid.merge_into dst
       (Timeseries.Pyramid.snapshot (mk 8 4 [ 3 ]))
   with
  | () -> Alcotest.fail "expected Invalid_argument (registered misalignment)"
  | exception Invalid_argument _ -> ());
  (* different ladders never merge *)
  let dst = mk 0 8 [ 3 ] in
  match
    Timeseries.Pyramid.merge_into dst
      (Timeseries.Pyramid.snapshot (mk 8 4 [ 5 ]))
  with
  | () -> Alcotest.fail "expected Invalid_argument (different ladders)"
  | exception Invalid_argument _ -> ()

let test_moments_remove () =
  let r = rng ~seed:71 () in
  for _ = 1 to 50 do
    let n = 2 + Prng.Rng.int r 500 in
    let cut = 1 + Prng.Rng.int r (n - 1) in
    let xs = Array.init n (fun _ -> (4. *. Prng.Rng.float r) -. 2.) in
    let whole = Timeseries.Moments.create () in
    Timeseries.Moments.add_slice whole xs 0 n;
    let tail = Timeseries.Moments.create () in
    Timeseries.Moments.add_slice tail xs cut (n - cut);
    Timeseries.Moments.remove_into whole tail;
    check_int "count after remove" cut (Timeseries.Moments.count whole);
    let prefix = Array.sub xs 0 cut in
    check_true "mean after remove"
      (relative (Timeseries.Moments.mean whole) (Stats.Descriptive.mean prefix)
       < 1e-9);
    if cut >= 2 then
      check_true "variance after remove"
        (Float.abs
           (Timeseries.Moments.variance whole
           -. Stats.Descriptive.variance prefix)
         < 1e-8)
  done

(* ---------------- pyramid vs naive variance-time ---------------- *)

(* The tentpole property: for random series, random chunkings and random
   level ladders (dyadic or not), the pyramid's exact levels agree with
   the aggregate-per-level reference to 1e-9 relative. *)
let test_pyramid_matches_naive () =
  let r = rng ~seed:99 () in
  for _trial = 1 to 220 do
    let n = 2 + Prng.Rng.int r 2000 in
    let xs = Array.init n (fun _ -> 5. +. Prng.Rng.float r) in
    let levels =
      List.init
        (1 + Prng.Rng.int r 10)
        (fun _ -> 1 + Prng.Rng.int r (Int.max 1 (n / 2)))
      |> List.sort_uniq compare
    in
    let naive = Timeseries.Variance_time.curve_naive ~levels xs in
    let chunk = 1 + Prng.Rng.int r (n + 4) in
    let pyr = Timeseries.Pyramid.create ~levels () in
    let pos = ref 0 in
    while !pos < n do
      let len = Int.min chunk (n - !pos) in
      Timeseries.Pyramid.push_slice pyr xs !pos len;
      pos := !pos + len
    done;
    check_int "count" n (Timeseries.Pyramid.count pyr);
    Array.iter
      (fun (p : Timeseries.Variance_time.point) ->
        match Timeseries.Pyramid.stat pyr p.m with
        | None -> Alcotest.failf "level %d missing from pyramid" p.m
        | Some s ->
          check_true "exact" s.Timeseries.Pyramid.exact;
          check_int "blocks" (Array.length xs / p.m)
            s.Timeseries.Pyramid.blocks;
          let v =
            s.Timeseries.Pyramid.var_sum
            /. (float_of_int p.m *. float_of_int p.m)
          in
          if relative v p.variance > 1e-9 then
            Alcotest.failf "m=%d naive %.17g pyramid %.17g" p.m p.variance v)
      naive
  done

let test_curve_equals_naive_default_levels () =
  let r = rng ~seed:5 () in
  for _ = 1 to 30 do
    let n = 50 + Prng.Rng.int r 5000 in
    let xs = Array.init n (fun _ -> 1. +. Prng.Rng.float r) in
    let c = Timeseries.Variance_time.curve xs in
    let naive = Timeseries.Variance_time.curve_naive xs in
    check_int "points" (Array.length naive) (Array.length c);
    Array.iteri
      (fun i (p : Timeseries.Variance_time.point) ->
        check_int "m" p.m c.(i).Timeseries.Variance_time.m;
        check_true "normalised"
          (relative c.(i).Timeseries.Variance_time.normalised p.normalised
           < 1e-9))
      naive
  done

(* The old standalone pyrtest sweep, folded in: every chunking of the
   same series — one value at a time, a prime stride, a typical buffer,
   one shot, and a random size — must reproduce curve_naive at every
   registered level. *)
let test_pyramid_chunking_sweep () =
  let r = rng ~seed:4242 () in
  for _trial = 1 to 60 do
    let n = 1 + Prng.Rng.int r 3000 in
    let xs = Array.init n (fun _ -> 10. +. Prng.Rng.float r) in
    let levels =
      List.init 12 (fun _ -> 1 + Prng.Rng.int r (Int.max 1 (n / 2)))
      |> List.sort_uniq compare
    in
    let naive = Timeseries.Variance_time.curve_naive ~levels xs in
    let chunked ch =
      let pyr = Timeseries.Pyramid.create ~levels () in
      let pos = ref 0 in
      while !pos < n do
        let len = Int.min ch (n - !pos) in
        Timeseries.Pyramid.push_slice pyr xs !pos len;
        pos := !pos + len
      done;
      Timeseries.Variance_time.curve_of_pyramid ~levels pyr
    in
    List.iter
      (fun ch ->
        let c = chunked ch in
        Array.iter
          (fun (p : Timeseries.Variance_time.point) ->
            match
              Array.find_opt
                (fun (q : Timeseries.Variance_time.point) -> q.m = p.m)
                c
            with
            | None -> Alcotest.failf "chunk %d: missing m=%d" ch p.m
            | Some q ->
              if relative q.variance p.variance > 1e-9 then
                Alcotest.failf "chunk %d m=%d: naive %.17g pyramid %.17g" ch
                  p.m p.variance q.variance)
          naive)
      [ 1; 7; 64; n; 1 + Prng.Rng.int r n ]
  done

(* Chunk boundary edge cases: chunk=1, chunk=n, n not a multiple. *)
let test_pyramid_chunk_edges () =
  let r = rng ~seed:3 () in
  let n = 1037 in
  let xs = Array.init n (fun _ -> 2. +. Prng.Rng.float r) in
  let levels = [ 1; 2; 3; 7; 10; 32; 100 ] in
  let run chunk =
    let pyr = Timeseries.Pyramid.create ~levels () in
    let pos = ref 0 in
    while !pos < n do
      let len = Int.min chunk (n - !pos) in
      Timeseries.Pyramid.push_slice pyr xs !pos len;
      pos := !pos + len
    done;
    Timeseries.Variance_time.curve_of_pyramid ~levels pyr
  in
  let whole = run n in
  List.iter
    (fun chunk ->
      let c = run chunk in
      check_int (Printf.sprintf "points chunk=%d" chunk) (Array.length whole)
        (Array.length c);
      Array.iteri
        (fun i (p : Timeseries.Variance_time.point) ->
          check_true
            (Printf.sprintf "chunk=%d m=%d" chunk p.m)
            (relative p.normalised
               whole.(i).Timeseries.Variance_time.normalised
             < 1e-9))
        c)
    [ 1; 2; 64; 1000; 1036 ]

(* Unregistered non-dyadic levels are resampled from the nearest dyadic
   level and reported at the level actually served. *)
let test_pyramid_resampled_levels () =
  let r = rng ~seed:11 () in
  let xs = Array.init 4096 (fun _ -> 1. +. Prng.Rng.float r) in
  let pyr = Timeseries.Pyramid.create () in
  Timeseries.Pyramid.push pyr xs;
  (match Timeseries.Pyramid.stat pyr 100 with
  | None -> Alcotest.fail "no stat for level 100"
  | Some s ->
    check_false "not exact" s.Timeseries.Pyramid.exact;
    check_int "served nearest dyadic" 128 s.Timeseries.Pyramid.served);
  (match Timeseries.Pyramid.stat pyr 64 with
  | None -> Alcotest.fail "no stat for level 64"
  | Some s ->
    check_true "dyadic exact" s.Timeseries.Pyramid.exact;
    check_int "served" 64 s.Timeseries.Pyramid.served);
  (* The nearest-dyadic fallback is flagged in the structured log,
     naming the requested and served levels. *)
  Engine.Log.set_enabled true;
  Engine.Log.reset ();
  ignore (Timeseries.Variance_time.curve_of_pyramid ~levels:[ 100; 64 ] pyr);
  let resampled =
    List.filter
      (fun ev -> ev.Engine.Log.ev_name = "variance_time.resampled")
      (Engine.Log.warnings ())
  in
  Engine.Log.set_enabled false;
  check_int "one resample warning" 1 (List.length resampled);
  match resampled with
  | [ ev ] ->
    check_true "names levels"
      (ev.Engine.Log.fields = [ ("requested", Engine.Log.I 100);
                                ("served", Engine.Log.I 128) ])
  | _ -> Alcotest.fail "expected exactly one resample warning"

(* ---------------- windowed estimation ---------------- *)

(* Rolling estimates over a stationary trace must equal batch analysis
   of exactly the covered suffix: the sliding read-out is a pane merge
   (never a moment subtraction), so H and rate agree to rounding with a
   pyramid fed the same bins in one slice. *)
let test_window_sliding_matches_batch () =
  let r = rng ~seed:77 () in
  let n = 2348 in
  let xs = Array.init n (fun _ -> 5. +. Prng.Rng.float r) in
  let bin = 0.5 in
  let vt_levels covered =
    let rec go m acc =
      if m > covered / 8 then List.rev acc else go (2 * m) (m :: acc)
    in
    go 1 []
  in
  let run kind window cadence =
    let ests = ref [] in
    let win =
      Core.Streaming.Window.create ~kind ~window ~cadence ~bin
        ~emit:(fun e -> ests := e :: !ests)
        ()
    in
    let pos = ref 0 in
    while !pos < n do
      let len = Int.min (1 + Prng.Rng.int r 200) (n - !pos) in
      Core.Streaming.Window.push_slice win xs !pos len;
      pos := !pos + len
    done;
    List.rev !ests
  in
  List.iter
    (fun (kind, window, cadence) ->
      let ests = run kind window cadence in
      check_true "estimates emitted" (List.length ests > 4);
      List.iter
        (fun (e : Core.Streaming.Window.estimate) ->
          let lo = e.upto - e.covered in
          check_true "covered window" (lo >= 0 && e.upto <= n);
          let pyr = Timeseries.Pyramid.create () in
          Timeseries.Pyramid.push pyr (Array.sub xs lo e.covered);
          check_true "rate"
            (relative e.rate (Timeseries.Pyramid.mean pyr /. bin) < 1e-9);
          let levels = vt_levels e.covered in
          if List.length levels >= 3 then begin
            let h = Lrd.Hurst.variance_time_of_pyramid ~levels pyr in
            check_true "H"
              (relative e.h.Lrd.Hurst.h h.Lrd.Hurst.h < 1e-9
              || (Float.is_nan e.h.Lrd.Hurst.h && Float.is_nan h.Lrd.Hurst.h))
          end)
        ests)
    [
      (Core.Streaming.Window.Sliding, 256, 64);
      (Core.Streaming.Window.Sliding, 128, 128);
      (Core.Streaming.Window.Tumbling, 256, 256);
    ]

(* ---------------- sink combinators ---------------- *)

let test_sink_combinators () =
  let r = rng ~seed:21 () in
  let xs = Array.init 1000 (fun _ -> Prng.Rng.float r) in
  let round_trip =
    Timeseries.Sink.iter_array ~chunk:37 xs (Timeseries.Sink.to_array ())
  in
  check_true "to_array round trip" (round_trip = xs);
  check_int "length" 1000
    (Timeseries.Sink.iter_array ~chunk:64 xs (Timeseries.Sink.length ()));
  let total, n =
    Timeseries.Sink.iter_array ~chunk:100 xs
      (Timeseries.Sink.tee
         (Timeseries.Sink.fold ~init:0. ~f:(fun acc c ->
              Array.fold_left ( +. ) acc c))
         (Timeseries.Sink.length ()))
  in
  check_int "tee length" 1000 n;
  check_true "tee sum"
    (relative total (Array.fold_left ( +. ) 0. xs) < 1e-12);
  check_int "map" 2000
    (Timeseries.Sink.iter_array xs
       (Timeseries.Sink.map (fun n -> 2 * n) (Timeseries.Sink.length ())))

(* Sink.counts must agree with Counts.of_events for any chunking of any
   sorted event stream. *)
let test_sink_counts_matches_of_events () =
  let r = rng ~seed:31 () in
  for _ = 1 to 60 do
    let n_events = 1 + Prng.Rng.int r 3000 in
    let span = 10. +. (90. *. Prng.Rng.float r) in
    let events =
      Array.init n_events (fun _ -> span *. Prng.Rng.float r)
    in
    Array.sort Float.compare events;
    let bin = 0.05 +. Prng.Rng.float r in
    let n_bins = int_of_float (Float.floor (span /. bin)) in
    if n_bins > 0 then begin
      let reference =
        Timeseries.Counts.of_events ~bin ~t_end:span events
      in
      let chunk = 1 + Prng.Rng.int r (n_bins + 8) in
      let got =
        Timeseries.Sink.iter_array
          ~chunk:(1 + Prng.Rng.int r (n_events + 8))
          events
          (Timeseries.Sink.counts ~bin ~n_bins ~chunk
             (Timeseries.Sink.to_array ()))
      in
      check_int "bins" (Array.length reference) (Array.length got);
      if got <> reference then Alcotest.fail "count series diverged"
    end
  done

let test_sink_counts_rejects_unsorted () =
  let sink =
    Timeseries.Sink.counts ~bin:1. ~n_bins:10 (Timeseries.Sink.to_array ())
  in
  Timeseries.Sink.push sink [| 1.; 2. |];
  Alcotest.check_raises "regressing time"
    (Invalid_argument
       "Sink.counts: event times must be non-decreasing (1.5 after 2)")
    (fun () -> Timeseries.Sink.push sink [| 1.5 |])

(* ---------------- streaming producers vs array wrappers ------------- *)

(* Reference copy of the pre-streaming list-based Poisson generator. *)
let reference_poisson ~rate ~duration rng =
  if rate = 0. then [||]
  else begin
    let out = ref [] in
    let t = ref 0. in
    let continue = ref true in
    while !continue do
      t := !t -. (log (Prng.Rng.float_pos rng) /. rate);
      if !t < duration then out := !t :: !out else continue := false
    done;
    Array.of_list (List.rev !out)
  end

let test_poisson_wrapper_identical () =
  List.iter
    (fun (rate, duration, seed) ->
      let a =
        Traffic.Poisson_proc.homogeneous ~rate ~duration
          (Prng.Rng.create seed)
      in
      let r2 = Prng.Rng.create seed in
      let b = reference_poisson ~rate ~duration r2 in
      check_true "events identical" (a = b);
      let r1 = Prng.Rng.create seed in
      ignore (Traffic.Poisson_proc.homogeneous ~rate ~duration r1);
      check_int "draw count" (Prng.Rng.draw_count r2) (Prng.Rng.draw_count r1))
    [ (50., 100., 1); (1000., 10., 2); (0., 5., 3); (3., 0.01, 4) ]

let test_poisson_chunking_invariant () =
  let collect chunk =
    let r = Prng.Rng.create 77 in
    let out = ref [] in
    Traffic.Poisson_proc.iter_chunks ~chunk ~rate:200. ~duration:50. r
      (fun c -> out := Array.copy c :: !out);
    Array.concat (List.rev !out)
  in
  let whole = collect max_int in
  List.iter
    (fun chunk -> check_true "chunked = whole" (collect chunk = whole))
    [ 1; 7; 64; 10000 ]

let test_pareto_wrapper_identical () =
  List.iter
    (fun (beta, bins, seed) ->
      let r1 = Prng.Rng.create seed and r2 = Prng.Rng.create seed in
      let a =
        Lrd.Pareto_count.count_process ~beta ~a:1. ~bin:10. ~bins r1
      in
      (* chunked consumer with an adversarial chunk size *)
      let out = ref [] in
      Lrd.Pareto_count.iter_count_chunks ~chunk:17 ~beta ~a:1. ~bin:10. ~bins
        r2 (fun c -> out := Array.copy c :: !out);
      let b = Array.concat (List.rev !out) in
      check_int "bins" bins (Array.length b);
      check_true "counts identical" (a = b);
      check_int "draw count" (Prng.Rng.draw_count r1) (Prng.Rng.draw_count r2))
    [ (1., 500, 9); (1.5, 1000, 10); (0.5, 200, 11) ]

(* Reference copy of the pre-streaming difference-array M/G/inf. *)
let reference_mg_inf ~rate ~service ~dt ~n ?warmup rng =
  let span = float_of_int n *. dt in
  let warmup = match warmup with Some w -> w | None -> span in
  let horizon = warmup +. span in
  let diff = Array.make (n + 1) 0 in
  let index_of time =
    let k = Float.ceil ((time -. warmup) /. dt) in
    int_of_float (Float.max 0. k)
  in
  let t = ref 0. in
  let continue = ref true in
  while !continue do
    t := !t -. (log (Prng.Rng.float_pos rng) /. rate);
    if !t >= horizon then continue := false
    else begin
      let s = service rng in
      let dep = !t +. s in
      if dep > warmup then begin
        let i0 = Int.min n (index_of !t) in
        let i1 = Int.min n (index_of dep) in
        if i1 > i0 then begin
          diff.(i0) <- diff.(i0) + 1;
          diff.(i1) <- diff.(i1) - 1
        end
      end
    end
  done;
  let out = Array.make n 0. in
  let acc = ref 0 in
  for k = 0 to n - 1 do
    acc := !acc + diff.(k);
    out.(k) <- float_of_int !acc
  done;
  out

let test_mg_inf_wrapper_identical () =
  List.iter
    (fun (rate, beta, n, seed) ->
      let service =
        Dist.Pareto.sample (Dist.Pareto.create ~location:0.5 ~shape:beta)
      in
      let r1 = Prng.Rng.create seed and r2 = Prng.Rng.create seed in
      let a = Traffic.Mg_inf.count_process ~rate ~service ~dt:1. ~n r1 in
      let b = reference_mg_inf ~rate ~service ~dt:1. ~n r2 in
      check_true "counts identical" (a = b);
      check_int "rng end state" (Prng.Rng.draw_count r2)
        (Prng.Rng.draw_count r1))
    [ (5., 1.5, 400, 13); (0.5, 1.2, 1000, 14); (20., 1.9, 100, 15) ]

let test_mg_inf_chunking_invariant () =
  let collect chunk =
    let service =
      Dist.Pareto.sample (Dist.Pareto.create ~location:1. ~shape:1.4)
    in
    let r = Prng.Rng.create 55 in
    let out = ref [] in
    Traffic.Mg_inf.iter_chunks ~chunk ~rate:3. ~service ~dt:0.5 ~n:700 r
      (fun c -> out := Array.copy c :: !out);
    Array.concat (List.rev !out)
  in
  let whole = collect max_int in
  List.iter
    (fun chunk -> check_true "chunked = whole" (collect chunk = whole))
    [ 1; 13; 700 ]

let test_onoff_chunking_invariant () =
  let sources =
    List.init 5 (fun i ->
        Traffic.Onoff.pareto_source ~beta:1.4
          ~mean_period:(2. +. float_of_int i)
          ~on_rate:20.)
  in
  let collect chunk =
    let r = Prng.Rng.create 303 in
    let out = ref [] in
    Traffic.Onoff.iter_chunks ~chunk ~sources ~dt:0.25 ~n:2000 r (fun c ->
        out := Array.copy c :: !out);
    Array.concat (List.rev !out)
  in
  let whole = collect 2000 in
  check_int "bins" 2000 (Array.length whole);
  check_true "some events" (Array.exists (fun c -> c > 0.) whole);
  List.iter
    (fun chunk -> check_true "chunked = whole" (collect chunk = whole))
    [ 1; 9; 512; 1999 ]

(* ---------------- R/S sink ---------------- *)

let test_rs_sink_matches_rescaled_range () =
  let r = rng ~seed:41 () in
  for _ = 1 to 10 do
    let n = 300 + Prng.Rng.int r 3000 in
    let xs = Array.init n (fun _ -> Prng.Rng.float r) in
    let reference = Lrd.Hurst.rescaled_range xs in
    let sink = Lrd.Hurst.rs_sink ~max_block:(n / 4) () in
    let chunk = 1 + Prng.Rng.int r 200 in
    let got = Timeseries.Sink.iter_array ~chunk xs sink in
    (* same blocks, same order, same arithmetic: exactly equal *)
    check_true "h" (got.Lrd.Hurst.h = reference.Lrd.Hurst.h);
    check_true "r2" (got.Lrd.Hurst.r2 = reference.Lrd.Hurst.r2)
  done

let test_rs_sink_bounded_memory_estimate () =
  (* On an i.i.d. series long enough that the bounded ladder still spans
     three decades, the capped sink lands near H = 1/2 like the full
     estimator. *)
  let r = rng ~seed:43 () in
  let xs = Array.init 60_000 (fun _ -> Prng.Rng.float r) in
  let capped =
    Timeseries.Sink.iter_array xs (Lrd.Hurst.rs_sink ~max_block:8192 ())
  in
  let full = Lrd.Hurst.rescaled_range xs in
  check_true "both near 1/2"
    (Float.abs (capped.Lrd.Hurst.h -. full.Lrd.Hurst.h) < 0.05)

(* ---------------- FIFO sink ---------------- *)

let test_fifo_sink_matches_simulate () =
  let r = rng ~seed:51 () in
  for _ = 1 to 8 do
    let n = 200 + Prng.Rng.int r 2000 in
    let t = ref 0. in
    let arrivals =
      Array.init n (fun _ ->
          t := !t +. (0.9 *. Prng.Rng.float r);
          !t)
    in
    let buffer = if Prng.Rng.bool r then Some 5 else None in
    let service rng = 0.3 +. (0.5 *. Prng.Rng.float rng) in
    let reference =
      Queueing.Fifo.simulate ?buffer ~arrivals ~service (Prng.Rng.create 1)
    in
    let sink = Queueing.Fifo.sink ?buffer ~service (Prng.Rng.create 1) in
    let got =
      Timeseries.Sink.iter_array ~chunk:(1 + Prng.Rng.int r 100) arrivals sink
    in
    check_int "n" reference.Queueing.Fifo.n got.Queueing.Fifo.n;
    check_int "dropped" reference.Queueing.Fifo.dropped
      got.Queueing.Fifo.dropped;
    check_true "mean wait"
      (got.Queueing.Fifo.mean_wait = reference.Queueing.Fifo.mean_wait);
    check_true "mean sojourn"
      (got.Queueing.Fifo.mean_sojourn = reference.Queueing.Fifo.mean_sojourn);
    check_true "max wait"
      (got.Queueing.Fifo.max_wait = reference.Queueing.Fifo.max_wait);
    check_true "utilization"
      (got.Queueing.Fifo.utilization = reference.Queueing.Fifo.utilization);
    (* histogram p99: within one log-bin (2.3%) of the exact quantile,
       plus an absolute epsilon for near-zero waits *)
    check_true "p99 approx"
      (Float.abs (got.Queueing.Fifo.p99_wait -. reference.Queueing.Fifo.p99_wait)
       <= (0.03 *. reference.Queueing.Fifo.p99_wait) +. 1e-6)
  done

(* ---------------- invalid-argument guards ---------------- *)

let test_invalid_argument_guards () =
  let raises name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument msg ->
      check_true (name ^ " names value") (String.length msg > 0)
  in
  raises "of_events bin" (fun () ->
      Timeseries.Counts.of_events ~bin:0. ~t_end:10. [| 1. |]);
  raises "of_events range" (fun () ->
      Timeseries.Counts.of_events ~bin:1. ~t_end:0. [| 1. |]);
  raises "aggregate m" (fun () -> Timeseries.Counts.aggregate [| 1.; 2. |] 0);
  raises "curve empty" (fun () -> Timeseries.Variance_time.curve [||]);
  raises "curve zero mean" (fun () ->
      Timeseries.Variance_time.curve (Array.make 100 0.));
  raises "curve_naive zero mean" (fun () ->
      Timeseries.Variance_time.curve_naive (Array.make 100 0.));
  raises "rescaled_range short" (fun () ->
      Lrd.Hurst.rescaled_range (Array.make 31 1.));
  raises "rs_sink max_block" (fun () -> Lrd.Hurst.rs_sink ~max_block:0 ());
  raises "fifo sink empty" (fun () ->
      let sink =
        Queueing.Fifo.sink ~service:(fun _ -> 1.) (Prng.Rng.create 0)
      in
      ignore (Timeseries.Sink.finish sink));
  raises "sink push after finish" (fun () ->
      let s = Timeseries.Sink.length () in
      ignore (Timeseries.Sink.finish s);
      Timeseries.Sink.push s [| 1. |]);
  raises "sink double finish" (fun () ->
      let s = Timeseries.Sink.length () in
      ignore (Timeseries.Sink.finish s);
      ignore (Timeseries.Sink.finish s));
  raises "tee finish surfaces at inner node" (fun () ->
      let a = Timeseries.Sink.length () in
      ignore (Timeseries.Sink.finish a);
      ignore (Timeseries.Sink.finish (Timeseries.Sink.tee a (Timeseries.Sink.length ()))))

(* ---------------- the stream driver ---------------- *)

let run_stream spec =
  let r = Core.Streaming.run spec in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Core.Streaming.pp fmt spec r;
  Format.pp_print_flush fmt ();
  (r, Buffer.contents buf)

let test_stream_jobs_deterministic () =
  let spec =
    { Core.Streaming.default with events = 2e5; rate = 500.; seed = 4242 }
  in
  let saved = Engine.Par.extra_domains () in
  Engine.Par.set_extra_domains 0;
  let _, seq = run_stream spec in
  Engine.Par.set_extra_domains 3;
  let _, par = run_stream spec in
  Engine.Par.set_extra_domains saved;
  check_true "byte-identical at any jobs" (String.equal seq par)

let test_stream_matches_materialized () =
  let spec =
    { Core.Streaming.default with events = 1e6; rate = 1000.; seed = 7 }
  in
  let streamed, _ = run_stream spec in
  let materialized, _ =
    run_stream { spec with Core.Streaming.materialized = true }
  in
  check_int "bins" materialized.Core.Streaming.bins
    streamed.Core.Streaming.bins;
  check_true "total"
    (streamed.Core.Streaming.total = materialized.Core.Streaming.total);
  (* same sample path + exact registered levels: equal, well inside the
     +/- 0.03 acceptance band *)
  check_true "H(vt) within 0.03"
    (Float.abs
       (streamed.Core.Streaming.h_vt.Lrd.Hurst.h
       -. materialized.Core.Streaming.h_vt.Lrd.Hurst.h)
     < 0.03);
  check_true "H(rs) within 0.03"
    (Float.abs
       (streamed.Core.Streaming.h_rs.Lrd.Hurst.h
       -. materialized.Core.Streaming.h_rs.Lrd.Hurst.h)
     < 0.03);
  check_true "pyramid chunked"
    (streamed.Core.Streaming.chunks > 0
    && streamed.Core.Streaming.resident < streamed.Core.Streaming.bins * 4)

let test_stream_chunk_memory () =
  (* Resident floats stay O(chunk + levels), far below the bin count. *)
  let spec =
    {
      Core.Streaming.default with
      events = 2e6;
      rate = 2.;
      bin = 0.1;
      chunk = 4096;
      seed = 12;
    }
  in
  let r, _ = run_stream spec in
  check_true "many bins" (r.Core.Streaming.bins >= 1_000_000);
  check_true "small resident"
    (r.Core.Streaming.resident < 12 * spec.Core.Streaming.chunk)

let suite =
  ( "stream",
    [
      tc "moments welford vs two-pass" test_moments_welford;
      tc "moments merge" test_moments_merge;
      tc "moments remove inverts merge" test_moments_remove;
      tc "pyramid merge = batch (power-of-two shards)"
        test_pyramid_merge_matches_batch;
      tc "pyramid merge exact registered levels"
        test_pyramid_merge_registered_levels;
      tc "pyramid merge misalignment raises"
        test_pyramid_merge_misaligned_raises;
      tc "pyramid matches naive VT (220 random cases)"
        test_pyramid_matches_naive;
      tc "curve equals naive on default levels"
        test_curve_equals_naive_default_levels;
      tc "pyramid chunking sweep (pyrtest)" test_pyramid_chunking_sweep;
      tc "pyramid chunk edge cases" test_pyramid_chunk_edges;
      tc "pyramid resampled levels" test_pyramid_resampled_levels;
      tc "sliding window = batch over covered bins"
        test_window_sliding_matches_batch;
      tc "sink combinators" test_sink_combinators;
      tc "sink counts = Counts.of_events" test_sink_counts_matches_of_events;
      tc "sink counts rejects unsorted" test_sink_counts_rejects_unsorted;
      tc "poisson wrapper identical" test_poisson_wrapper_identical;
      tc "poisson chunking invariant" test_poisson_chunking_invariant;
      tc "pareto wrapper identical" test_pareto_wrapper_identical;
      tc "mg_inf wrapper identical" test_mg_inf_wrapper_identical;
      tc "mg_inf chunking invariant" test_mg_inf_chunking_invariant;
      tc "onoff chunking invariant" test_onoff_chunking_invariant;
      tc "rs sink = rescaled_range" test_rs_sink_matches_rescaled_range;
      tc "rs sink bounded-memory estimate"
        test_rs_sink_bounded_memory_estimate;
      tc "fifo sink = simulate" test_fifo_sink_matches_simulate;
      tc "invalid-argument guards" test_invalid_argument_guards;
      tc "stream driver byte-identical across jobs"
        test_stream_jobs_deterministic;
      tc "stream = materialized (1e6 events)" test_stream_matches_materialized;
      tc "stream resident memory O(chunk)" test_stream_chunk_memory;
    ] )

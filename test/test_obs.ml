(* Observability layer: SHA-256 and JSON primitives, the structured
   event log (ordering under parallel emission, level filtering,
   non-perturbation), run provenance manifests (round-trip, cross-run
   determinism in fresh processes, seed divergence), the statistically
   gated perf-diff, and the HTML run report (tag balance, artifact
   coverage). *)

open Helpers

(* Plain substring search, so the suite needs no regex library. *)
let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

(* ---------------- Sha256 ---------------- *)

let test_sha256_vectors () =
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Engine.Sha256.hex "");
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Engine.Sha256.hex "abc");
  Alcotest.(check string) "two-block message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Engine.Sha256.hex
       "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Engine.Sha256.hex (String.make 1_000_000 'a'));
  (* Length padding straddles the block boundary at 55/56/63/64 bytes;
     the digests must all differ. *)
  let h n = Engine.Sha256.hex (String.make n 'x') in
  let ds = List.map h [ 55; 56; 63; 64; 65 ] in
  check_int "boundary digests distinct" 5
    (List.length (List.sort_uniq compare ds))

(* ---------------- Json ---------------- *)

let test_json_roundtrip () =
  let cases =
    [
      {|{"a":[1,2.5,"x"],"b":null,"c":true,"d":false}|};
      {|[]|};
      {|{"nested":{"deep":[[1],[2,3]]},"s":"\"quoted\" \\ slash"}|};
      {|"A\n\t"|};
      {|-17|};
      {|3.25|};
    ]
  in
  List.iter
    (fun s ->
      match Engine.Json.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok v -> (
        let printed = Engine.Json.to_string v in
        match Engine.Json.parse printed with
        | Error e -> Alcotest.failf "reparse %s: %s" printed e
        | Ok v' ->
          check_true ("round-trip " ^ s) (v = v')))
    cases;
  (* Ints and floats stay distinct through print/parse. *)
  check_true "int stays int"
    (Engine.Json.parse (Engine.Json.to_string (Engine.Json.Int 3))
     = Ok (Engine.Json.Int 3));
  check_true "float stays float"
    (Engine.Json.parse (Engine.Json.to_string (Engine.Json.Float 3.))
     = Ok (Engine.Json.Float 3.));
  List.iter
    (fun bad ->
      check_true ("rejects " ^ bad)
        (Result.is_error (Engine.Json.parse bad)))
    [ "{"; "[1,]"; "tru"; {|{"a":}|}; ""; {|{"a":1} trailing|} ]

(* ---------------- Welch ---------------- *)

let test_welch () =
  let a = [| 10.; 11.; 9.; 10.5; 9.5; 10.2 |] in
  let same = Stats.Welch.t_test a a in
  check_true "identical samples: p = 1"
    (Float.abs (same.Stats.Welch.p_value -. 1.) < 1e-9);
  let b = Array.map (fun x -> x +. 20.) a in
  let far = Stats.Welch.t_test a b in
  check_true "separated means: p tiny" (far.Stats.Welch.p_value < 1e-6);
  check_true "separated means: t large" (Float.abs far.Stats.Welch.t > 10.);
  let tiny = Stats.Welch.t_test [| 1. |] a in
  check_true "n < 2: p is nan" (Float.is_nan tiny.Stats.Welch.p_value);
  (* Symmetric: swapping sides flips t, keeps p. *)
  let fwd = Stats.Welch.t_test a b and bwd = Stats.Welch.t_test b a in
  check_true "p symmetric"
    (Float.abs (fwd.Stats.Welch.p_value -. bwd.Stats.Welch.p_value) < 1e-12);
  check_true "t antisymmetric"
    (Float.abs (fwd.Stats.Welch.t +. bwd.Stats.Welch.t) < 1e-9)

(* ---------------- Log ---------------- *)

let with_log ?(level = Engine.Log.Debug) f =
  Engine.Log.set_enabled true;
  Engine.Log.reset ();
  Engine.Log.set_level level;
  Fun.protect
    ~finally:(fun () ->
      Engine.Log.set_enabled false;
      Engine.Log.set_level Engine.Log.Info;
      Engine.Log.reset ())
    f

let test_log_ordering_under_jobs () =
  with_log (fun () ->
      let mk i =
        let id = Printf.sprintf "logtask%d" i in
        Engine.Task.make ~id ~title:id (fun _ctx ->
            for k = 0 to 9 do
              Engine.Log.info "tick" [ ("k", Engine.Log.I k) ]
            done)
      in
      let tasks = List.init 8 mk in
      let results = Engine.Pool.run ~jobs:4 ~seed:0 tasks in
      check_int "all tasks ran" 8 (List.length results);
      let evs = Engine.Log.events () in
      (* Total order: sequence numbers strictly increasing. *)
      let rec mono = function
        | a :: (b :: _ as rest) ->
          (a.Engine.Log.seq < b.Engine.Log.seq) && mono rest
        | _ -> true
      in
      check_true "seq strictly increasing" (mono evs);
      (* Every task's 10 ticks arrived, attributed to that task. *)
      List.iteri
        (fun i _ ->
          let id = Printf.sprintf "logtask%d" i in
          let mine =
            List.filter
              (fun ev ->
                ev.Engine.Log.ev_name = "tick"
                && ev.Engine.Log.ev_task = Some id)
              evs
          in
          check_int ("ticks of " ^ id) 10 (List.length mine))
        tasks;
      (* task.start / task.done bracket each task. *)
      check_int "task.start events" 8
        (List.length
           (List.filter (fun ev -> ev.Engine.Log.ev_name = "task.start") evs));
      check_int "task.done events" 8
        (List.length
           (List.filter (fun ev -> ev.Engine.Log.ev_name = "task.done") evs)))

let test_log_level_filtering () =
  with_log ~level:Engine.Log.Warn (fun () ->
      Engine.Log.debug "drop.debug" [];
      Engine.Log.info "drop.info" [];
      Engine.Log.warn "keep.warn" [];
      Engine.Log.error "keep.error" [];
      let names = List.map (fun ev -> ev.Engine.Log.ev_name) (Engine.Log.events ()) in
      Alcotest.(check (list string)) "only warn and above"
        [ "keep.warn"; "keep.error" ] names;
      (* Suppressed events consume no sequence numbers. *)
      check_int "seqs dense" 1
        (List.fold_left (fun _ ev -> ev.Engine.Log.seq) 0
           (Engine.Log.events ())));
  Engine.Log.set_enabled false;
  Engine.Log.reset ();
  Engine.Log.info "off" [];
  check_int "disabled log records nothing" 0
    (List.length (Engine.Log.events ()))

let test_log_jsonl_and_file () =
  with_log (fun () ->
      let path = Filename.temp_file "wanpoisson" ".jsonl" in
      (match Engine.Log.open_file path with
       | Ok () -> ()
       | Error e -> Alcotest.fail e);
      Engine.Log.info "ev.one" [ ("x", Engine.Log.I 1) ];
      Engine.Log.warn "ev.two"
        [ ("why", Engine.Log.S "because"); ("ok", Engine.Log.B false) ];
      Engine.Log.close_file ();
      let contents = In_channel.with_open_bin path In_channel.input_all in
      Sys.remove path;
      let lines =
        String.split_on_char '\n' contents
        |> List.filter (fun l -> String.trim l <> "")
      in
      check_int "one line per event" 2 (List.length lines);
      List.iter
        (fun l ->
          match Engine.Json.parse l with
          | Error e -> Alcotest.failf "sink line not JSON: %s (%s)" l e
          | Ok j ->
            check_true "line has seq"
              (Engine.Json.member "seq" j <> None))
        lines;
      check_true "in-memory export matches sink"
        (String.concat "" (List.map (fun l -> l ^ "\n") lines)
         = Engine.Log.to_jsonl ());
      check_true "unwritable path reports the path"
        (match Engine.Log.open_file "/nonexistent-dir/x.jsonl" with
         | Error msg ->
           (* The message must carry the offending path. *)
           contains_sub msg "/nonexistent-dir/x.jsonl"
         | Ok () -> false))

let test_log_non_perturbation () =
  (* Running with logging on (debug level, hooks firing) must leave
     artifact bytes identical to a plain run. *)
  let entry = Option.get (Core.Registry.find "fig14") in
  let task = Core.Registry.task entry in
  let run () =
    Core.Cache.clear ();
    match Engine.Pool.run ~jobs:2 ~seed:0 ~figures:true [ task ] with
    | [ Ok a ] -> (a.Engine.Artifact.text, a.Engine.Artifact.figures)
    | _ -> Alcotest.fail "fig14 failed"
  in
  let plain = run () in
  let logged = with_log run in
  check_true "artifact bytes unchanged by logging" (plain = logged)

(* ---------------- Manifest ---------------- *)

let art ?(figs = []) id text =
  {
    Engine.Artifact.id;
    title = "title of " ^ id;
    text;
    figures = figs;
    duration_s = 0.25;
    metrics = [];
  }

let test_manifest_roundtrip () =
  let arts =
    [
      art "alpha" "report alpha\n" ~figs:[ ("alpha.svg", "<svg/>") ];
      art "beta" "report beta\n";
    ]
  in
  let m =
    Engine.Manifest.of_run ~created_at:123.5 ~seed:9 ~jobs:3 ~total_s:1.5 arts
  in
  let s = Engine.Manifest.to_string m in
  (match Engine.Manifest.parse s with
   | Error e -> Alcotest.fail e
   | Ok m' ->
     check_true "round-trip equal" (m = m');
     let d = Engine.Manifest.compare_manifests m m' in
     check_true "self-compare identical" d.Engine.Manifest.identical);
  (* A single changed byte in one artifact shows up as that artifact's
     file diverging. *)
  let arts' =
    [
      art "alpha" "report alpha!\n" ~figs:[ ("alpha.svg", "<svg/>") ];
      art "beta" "report beta\n";
    ]
  in
  let m2 =
    Engine.Manifest.of_run ~created_at:124.0 ~seed:9 ~jobs:1 ~total_s:1.5 arts'
  in
  let d = Engine.Manifest.compare_manifests m m2 in
  check_false "divergence detected" d.Engine.Manifest.identical;
  (match d.Engine.Manifest.divergent with
   | [ (id, files) ] ->
     Alcotest.(check string) "right artifact" "alpha" id;
     Alcotest.(check (list string)) "right file" [ "alpha.txt" ] files
   | _ -> Alcotest.fail "expected exactly one divergent artifact");
  check_true "jobs note marked benign"
    (List.exists
       (fun n -> contains_sub n "benign")
       d.Engine.Manifest.notes);
  check_true "rejects unknown schema"
    (Result.is_error (Engine.Manifest.parse {|{"schema":99}|}))

let test_manifest_seed_divergence () =
  (* Tasks that actually draw from the per-task RNG stream: same seed
     gives identical manifests, different seeds diverge. *)
  let mk id =
    Engine.Task.make ~id ~title:id (fun ctx ->
        let rng = Engine.Task.rng ctx in
        for _ = 1 to 5 do
          Format.fprintf (Engine.Task.formatter ctx) "%.17g@."
            (Prng.Rng.float rng)
        done)
  in
  let tasks = [ mk "rng-a"; mk "rng-b" ] in
  let manifest ~seed ~jobs =
    let arts =
      Engine.Pool.run ~jobs ~seed tasks
      |> List.map (function
           | Ok a -> a
           | Error e -> Alcotest.fail (Printexc.to_string e))
    in
    Engine.Manifest.of_run ~created_at:0. ~seed ~jobs ~total_s:0. arts
  in
  let a = manifest ~seed:1 ~jobs:1 in
  let b = manifest ~seed:1 ~jobs:4 in
  let c = manifest ~seed:2 ~jobs:1 in
  check_true "same seed, different jobs: identical"
    (Engine.Manifest.compare_manifests a b).Engine.Manifest.identical;
  let d = Engine.Manifest.compare_manifests a c in
  check_false "different seed: diverges" d.Engine.Manifest.identical;
  check_int "both rng tasks diverge" 2
    (List.length d.Engine.Manifest.divergent)

let test_manifest_cross_process () =
  (* Two fresh bench processes, same seed: the manifests they write
     must agree hash for hash. This is the real determinism claim — no
     shared in-process state to hide behind. *)
  let tmp = Filename.temp_file "wanpoisson" "" in
  Sys.remove tmp;
  let dir_a = tmp ^ ".a" and dir_b = tmp ^ ".b" in
  let bench_exe =
    (* Resolve relative to this test binary, so it works under both
       `dune runtest` (cwd _build/default/test) and `dune exec` from
       the project root. *)
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bench/main.exe"
  in
  let bench dir =
    Printf.sprintf "%s --only fig14 --seed 11 --out %s >/dev/null 2>&1"
      (Filename.quote bench_exe) (Filename.quote dir)
  in
  check_int "first run exits 0" 0 (Sys.command (bench dir_a));
  check_int "second run exits 0" 0 (Sys.command (bench dir_b));
  let load dir =
    match Engine.Manifest.load (Filename.concat dir "run.json") with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let a = load dir_a and b = load dir_b in
  check_true "fresh processes, same seed: manifests agree"
    (Engine.Manifest.compare_manifests a b).Engine.Manifest.identical;
  check_true "manifest names the figure"
    (List.exists
       (fun (e : Engine.Manifest.artifact_entry) ->
         List.exists
           (fun (f : Engine.Manifest.file_entry) ->
             f.Engine.Manifest.fname = "fig14.svg")
           e.Engine.Manifest.art_files)
       a.Engine.Manifest.artifacts);
  let rm dir =
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  in
  rm dir_a;
  rm dir_b

(* ---------------- Perf history + diff ---------------- *)

let mk_record ts entries =
  {
    Engine.Perf_history.ts;
    label = "test";
    entries =
      List.map
        (fun (bench, ns) -> { Engine.Perf_history.bench; ns })
        entries;
  }

let test_perf_history_roundtrip () =
  let path = Filename.temp_file "wanpoisson" ".jsonl" in
  Sys.remove path;
  let r1 = mk_record 1. [ ("fft", [ 100.; 101.; 99. ]) ] in
  let r2 = mk_record 2. [ ("fft", [ 100.5; 99.5 ]); ("whittle", [ 7. ]) ] in
  (match Engine.Perf_history.append ~path r1 with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match Engine.Perf_history.append ~path r2 with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match Engine.Perf_history.load path with
   | Error e -> Alcotest.fail e
   | Ok records ->
     check_int "two records" 2 (List.length records);
     check_true "records round-trip" (records = [ r1; r2 ]);
     let pooled = Engine.Perf_history.pooled records in
     check_true "pooled fft has all five samples"
       (List.assoc "fft" pooled = [| 100.; 101.; 99.; 100.5; 99.5 |]));
  Sys.remove path;
  check_true "load of missing file is an error"
    (Result.is_error (Engine.Perf_history.load path))

let test_perf_diff_gates () =
  let old_ = [ mk_record 1. [ ("k", [ 100.; 101.; 99.; 100.5; 99.5; 100.2 ]) ] ] in
  let noise =
    [ mk_record 2. [ ("k", [ 99.8; 100.3; 100.9; 99.1; 100.4; 99.7 ]) ] ]
  in
  let slow =
    [ mk_record 3. [ ("k", [ 300.; 303.; 297.; 301.5; 298.5; 300.6 ]) ] ]
  in
  let verdicts, _ = Engine.Perf_history.diff old_ noise in
  check_false "noise not flagged" (Engine.Perf_history.any_regression verdicts);
  let verdicts, unmatched = Engine.Perf_history.diff old_ slow in
  check_true "no unmatched benchmarks" (unmatched = []);
  check_true "3x slowdown flagged" (Engine.Perf_history.any_regression verdicts);
  (match verdicts with
   | [ v ] ->
     check_true "ratio near 3" (Float.abs (v.Engine.Perf_history.ratio -. 3.) < 0.05);
     check_true "confidence > 99%" (v.Engine.Perf_history.confidence > 0.99);
     check_true "CI excludes 1"
       (v.Engine.Perf_history.ci_lo > 1. && v.Engine.Perf_history.ci_hi > 1.);
     check_true "welch p below alpha"
       (v.Engine.Perf_history.welch.Stats.Welch.p_value < 0.01)
   | _ -> Alcotest.fail "expected one verdict");
  (* Practical floor: a 2% drift, however statistically resolvable, is
     not a regression at the default min_effect. *)
  let drift =
    [ mk_record 4. [ ("k", [ 102.; 103.; 101.; 102.5; 101.5; 102.2 ]) ] ]
  in
  let verdicts, _ = Engine.Perf_history.diff old_ drift in
  check_false "2% drift below practical floor"
    (Engine.Perf_history.any_regression verdicts);
  (* The improvement direction is symmetric. *)
  let verdicts, _ = Engine.Perf_history.diff slow old_ in
  check_true "speedup reported as improvement"
    (List.exists (fun v -> v.Engine.Perf_history.improvement) verdicts)

(* ---------------- HTML report ---------------- *)

(* Tag-balance scanner: quotes-aware, void elements skipped. *)
let check_tag_balance name html =
  let n = String.length html in
  let voids = [ "meta"; "br"; "hr"; "img"; "input"; "link" ] in
  let stack = ref [] in
  let i = ref 0 in
  while !i < n do
    if html.[!i] = '<' then begin
      if !i + 1 < n && html.[!i + 1] = '!' then begin
        (* <!DOCTYPE ...> *)
        while !i < n && html.[!i] <> '>' do incr i done
      end
      else begin
        let closing = !i + 1 < n && html.[!i + 1] = '/' in
        let start = !i + if closing then 2 else 1 in
        let j = ref start in
        while
          !j < n
          && (match html.[!j] with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
              | _ -> false)
        do
          incr j
        done;
        let tag = String.lowercase_ascii (String.sub html start (!j - start)) in
        (* Scan to the tag end, skipping quoted attribute values. *)
        let self_closing = ref false in
        let k = ref !j in
        let in_quote = ref None in
        while
          !k < n
          && not (!in_quote = None && html.[!k] = '>')
        do
          (match (!in_quote, html.[!k]) with
           | None, ('"' | '\'') -> in_quote := Some html.[!k]
           | Some q, c when c = q -> in_quote := None
           | _ -> ());
          incr k
        done;
        if !k > !j && html.[!k - 1] = '/' then self_closing := true;
        if tag <> "" && not (List.mem tag voids) && not !self_closing then begin
          if closing then
            match !stack with
            | top :: rest when top = tag -> stack := rest
            | top :: _ ->
              Alcotest.failf "%s: </%s> closes <%s>" name tag top
            | [] -> Alcotest.failf "%s: stray </%s>" name tag
          else stack := tag :: !stack
        end;
        i := !k
      end
    end;
    incr i
  done;
  if !stack <> [] then
    Alcotest.failf "%s: unclosed tags %s" name (String.concat ", " !stack)

let test_report_html () =
  let arts =
    [
      art "alpha" "line with <angle> & \"quotes\"\n"
        ~figs:[ ("alpha.svg", "<svg/>") ];
      art "beta" "plain beta report\n";
    ]
  in
  let manifest =
    Engine.Manifest.of_run ~created_at:1. ~seed:5 ~jobs:2 ~total_s:0.5 arts
  in
  let log_events =
    Engine.Log.set_enabled true;
    Engine.Log.reset ();
    Engine.Log.warn "whittle.at_boundary" [ ("h", Engine.Log.F 0.99) ];
    let evs = Engine.Log.events () in
    Engine.Log.set_enabled false;
    Engine.Log.reset ();
    evs
  in
  let html =
    Engine.Report_html.render ~manifest ~log_events
      ~sparklines:[ ("Perf trajectory", "<svg width=\"10\"></svg>") ]
      ~title:"test report" ~build:"paxfloyd test" ~seed:5 ~jobs:2 ~total_s:0.5
      ~artifacts:arts ~events:[] ~counters:[ ("cache.hits", 3) ] ()
  in
  check_tag_balance "report" html;
  let contains needle = contains_sub html needle in
  (* Every artifact id appears; raw text is escaped; hashes, warnings,
     counters and sparklines all land in the document. *)
  List.iter
    (fun (a : Engine.Artifact.t) ->
      check_true ("mentions " ^ a.Engine.Artifact.id)
        (contains a.Engine.Artifact.id))
    arts;
  check_true "escapes angle brackets" (contains "&lt;angle&gt;");
  check_true "no raw angle text" (not (contains "line with <angle>"));
  check_true "embeds a content hash"
    (contains (Engine.Sha256.hex "plain beta report\n"));
  check_true "lists the warning" (contains "whittle.at_boundary");
  check_true "lists the counter" (contains "cache.hits");
  check_true "embeds the sparkline" (contains "Perf trajectory");
  check_true "is a complete document"
    (String.length html > 200
     && String.sub html 0 15 = "<!DOCTYPE html>")

let test_flame_svg () =
  (* Spans nested on one domain stack into depths; the SVG stays
     balanced and names every span. *)
  Engine.Telemetry.set_enabled true;
  Engine.Telemetry.reset ();
  Engine.Telemetry.span ~name:"outer" (fun () ->
      Engine.Telemetry.span ~name:"inner" (fun () -> ignore (Sys.opaque_identity 1)));
  let events = Engine.Telemetry.events () in
  Engine.Telemetry.set_enabled false;
  let svg = Engine.Report_html.flame_svg events in
  check_tag_balance "flame svg" svg;
  let contains needle = contains_sub svg needle in
  check_true "outer span drawn" (contains "outer");
  check_true "inner span drawn" (contains "inner");
  check_true "empty input yields empty svg"
    (String.length (Engine.Report_html.flame_svg []) < 64)

(* ---------------- Cli ---------------- *)

let parse argv =
  Engine.Cli.parse ~jobs_default:1 (Array.of_list ("bench" :: argv))

let test_cli_observability_flags () =
  (match
     parse
       [ "--log"; "run.jsonl"; "--log-level"; "debug"; "--record"; "h.jsonl";
         "--report-html"; "r.html" ]
   with
   | Engine.Cli.Config c ->
     check_true "log" (c.log = Some "run.jsonl");
     check_true "log level" (c.log_level = Engine.Log.Debug);
     check_true "record" (c.record = Some "h.jsonl");
     check_true "report html" (c.report_html = Some "r.html")
   | _ -> Alcotest.fail "observability flags must parse");
  (match parse [ "--version" ] with
   | Engine.Cli.Config c ->
     check_true "version action" (c.action = Engine.Cli.Version)
   | _ -> Alcotest.fail "--version must parse");
  check_true "bad log level rejected"
    (match parse [ "--log-level"; "loud" ] with
     | Engine.Cli.Error _ -> true
     | _ -> false);
  check_true "build info describes itself"
    (contains_sub (Engine.Build_info.describe ()) "paxfloyd")

let tc name f = Alcotest.test_case name `Quick f

let suite =
  ( "obs",
    [
      tc "sha256 vectors" test_sha256_vectors;
      tc "json round-trip" test_json_roundtrip;
      tc "welch t-test" test_welch;
      tc "log ordering under jobs 4" test_log_ordering_under_jobs;
      tc "log level filtering" test_log_level_filtering;
      tc "log jsonl + file sink" test_log_jsonl_and_file;
      tc "log non-perturbation" test_log_non_perturbation;
      tc "manifest round-trip" test_manifest_roundtrip;
      tc "manifest seed divergence" test_manifest_seed_divergence;
      tc "manifest cross-process determinism" test_manifest_cross_process;
      tc "perf history round-trip" test_perf_history_roundtrip;
      tc "perf-diff statistical gates" test_perf_diff_gates;
      tc "html report" test_report_html;
      tc "flame svg" test_flame_svg;
      tc "cli observability flags" test_cli_observability_flags;
    ] )

(* Goodness-of-fit self-tests: every sampler in lib/dist is checked
   against its own CDF/pmf on 10k fixed-seed draws, so a regression in
   either the sampler or the analytic side trips the suite. Continuous
   samplers go through the one-sample Kolmogorov-Smirnov test; discrete
   samplers through a chi-square with cells pooled to expected counts of
   at least 5 and the p-value from the regularized incomplete gamma
   function. Seeds are fixed, so the p-values are deterministic and the
   thresholds are exact pass/fail lines, not flaky tolerances. *)

open Helpers

let n_draws = 10_000

let draws seed f =
  let r = Prng.Rng.create seed in
  Array.init n_draws (fun _ -> f r)

(* A sampler should neither fail its own CDF (p tiny) nor fit it
   implausibly well across the whole battery; 1% keeps the per-test
   false-alarm rate negligible while still catching real distortions
   (a wrong shape parameter moves p below 1e-6 at n = 10k). *)
let p_floor = 0.01

let ks_gof name cdf samples =
  let r = Stest.Ks.test cdf samples in
  if r.Stest.Ks.p_value <= p_floor then
    Alcotest.failf "%s: KS d=%.4f p=%.2e <= %.2f" name r.Stest.Ks.d
      r.Stest.Ks.p_value p_floor

(* ---------------- discrete chi-square ---------------- *)

(* Observed/expected cells for values 0..k_max-1 plus a pooled upper
   tail; adjacent cells are then merged left-to-right until each pooled
   cell expects at least 5 draws (the classical validity rule). *)
let chi_square_discrete name ~pmf ~k_max samples =
  let nf = float_of_int (Array.length samples) in
  let obs = Array.make (k_max + 1) 0. in
  Array.iter
    (fun k ->
      let k = Int.max 0 k in
      let i = if k >= k_max then k_max else k in
      obs.(i) <- obs.(i) +. 1.)
    samples;
  let body = Array.init k_max (fun k -> nf *. pmf k) in
  let tail = nf -. Array.fold_left ( +. ) 0. body in
  let expected = Array.append body [| Float.max tail 1e-9 |] in
  let cells = ref [] in
  let o = ref 0. and e = ref 0. in
  Array.iteri
    (fun i oi ->
      o := !o +. oi;
      e := !e +. expected.(i);
      if !e >= 5. then begin
        cells := (!o, !e) :: !cells;
        o := 0.;
        e := 0.
      end)
    obs;
  (* Whatever is left expects < 5: fold it into the last pooled cell. *)
  (match (!cells, !e > 0.) with
  | (lo, le) :: rest, true -> cells := ((lo +. !o, le +. !e) :: rest)
  | [], true -> cells := [ (!o, !e) ]
  | _, false -> ());
  let cells = List.rev !cells in
  let dof = List.length cells - 1 in
  if dof < 2 then
    Alcotest.failf "%s: only %d pooled cells; widen k_max" name (dof + 1);
  let stat =
    List.fold_left
      (fun acc (o, e) ->
        let d = o -. e in
        acc +. (d *. d /. e))
      0. cells
  in
  let p = Dist.Special.gamma_q (float_of_int dof /. 2.) (stat /. 2.) in
  if p <= p_floor then
    Alcotest.failf "%s: chi2=%.2f dof=%d p=%.2e <= %.2f" name stat dof p
      p_floor

(* ---------------- continuous samplers ---------------- *)

let test_exponential () =
  let d = Dist.Exponential.create ~mean:1.3 in
  ks_gof "exponential" (Dist.Exponential.cdf d)
    (draws 101 (Dist.Exponential.sample d))

let test_pareto () =
  let d = Dist.Pareto.create ~location:1.0 ~shape:0.9 in
  ks_gof "pareto beta=0.9" (Dist.Pareto.cdf d)
    (draws 102 (Dist.Pareto.sample d))

let test_pareto_truncated () =
  (* sample_truncated is inverse-CDF on [location, upper]: its target is
     the conditional law F(x) / F(upper). *)
  let d = Dist.Pareto.create ~location:1.0 ~shape:1.2 in
  let upper = 50. in
  let cdf x = Dist.Pareto.cdf d (Float.min x upper) /. Dist.Pareto.cdf d upper in
  ks_gof "pareto truncated" cdf
    (draws 103 (Dist.Pareto.sample_truncated d ~upper))

let test_lognormal () =
  let d = Dist.Lognormal.of_log2 ~mean_log2:(log 100. /. log 2.) ~sd_log2:2.24 in
  ks_gof "lognormal" (Dist.Lognormal.cdf d)
    (draws 104 (Dist.Lognormal.sample d))

let test_weibull () =
  let d = Dist.Weibull.create ~shape:0.7 ~scale:2.0 in
  ks_gof "weibull shape=0.7" (Dist.Weibull.cdf d)
    (draws 105 (Dist.Weibull.sample d))

let test_gamma_large_shape () =
  (* shape >= 1: the Marsaglia-Tsang squeeze path. *)
  let d = Dist.Gamma_d.create ~shape:2.5 ~scale:1.7 in
  ks_gof "gamma shape=2.5" (Dist.Gamma_d.cdf d)
    (draws 106 (Dist.Gamma_d.sample d))

let test_gamma_small_shape () =
  (* shape < 1: the boosting path. *)
  let d = Dist.Gamma_d.create ~shape:0.5 ~scale:1.0 in
  ks_gof "gamma shape=0.5" (Dist.Gamma_d.cdf d)
    (draws 107 (Dist.Gamma_d.sample d))

let test_normal () =
  let d = Dist.Normal.create ~mu:(-1.5) ~sigma:2.5 in
  ks_gof "normal" (Dist.Normal.cdf d) (draws 108 (Dist.Normal.sample d))

let test_uniform () =
  let d = Dist.Uniform.create ~lo:(-3.) ~hi:7. in
  ks_gof "uniform" (Dist.Uniform.cdf d) (draws 109 (Dist.Uniform.sample d))

let test_log_extreme () =
  let d = Dist.Log_extreme.telnet_bytes in
  ks_gof "log-extreme" (Dist.Log_extreme.cdf d)
    (draws 110 (Dist.Log_extreme.sample d))

let test_empirical_of_samples () =
  (* The empirical CDF and quantile are consistent piecewise-linear
     inverses, so samples drawn through the quantile must pass a KS test
     against the CDF. Continuous base data keeps the order statistics
     distinct (no flat CDF segments). *)
  let base = draws 111 (Dist.Normal.sample Dist.Normal.standard) in
  let d = Dist.Empirical.of_samples base in
  ks_gof "empirical (of_samples)" (Dist.Empirical.cdf d)
    (draws 112 (Dist.Empirical.sample d))

let test_empirical_quantile_table () =
  (* Same consistency check for the quantile-knot constructor with
     log-space interpolation — the encoding of the Tcplib tables. *)
  let knots =
    [| (0.0, 0.001); (0.25, 0.01); (0.5, 0.1); (0.9, 1.0); (1.0, 100.0) |]
  in
  let d = Dist.Empirical.of_quantile_table ~log_interp:true knots in
  ks_gof "empirical (quantile table)" (Dist.Empirical.cdf d)
    (draws 113 (Dist.Empirical.sample d))

let test_tcplib_interarrival () =
  (* The production instance of the empirical machinery: Tcplib TELNET
     packet interarrivals sampled against their own table. *)
  let d = Tcplib.Telnet.interarrival in
  ks_gof "tcplib telnet interarrival" (Dist.Empirical.cdf d)
    (draws 114 (Dist.Empirical.sample d))

(* ---------------- discrete samplers ---------------- *)

let test_geometric () =
  let d = Dist.Geometric.create ~p:0.3 in
  chi_square_discrete "geometric" ~pmf:(Dist.Geometric.pmf d) ~k_max:25
    (draws 201 (Dist.Geometric.sample d))

let test_binomial () =
  (* n = 20 stays on the exact Bernoulli-sum path. *)
  let d = Dist.Binomial.create ~n:20 ~p:0.35 in
  chi_square_discrete "binomial n=20" ~pmf:(Dist.Binomial.pmf d) ~k_max:20
    (draws 202 (Dist.Binomial.sample d))

let test_binomial_large () =
  (* Large n: the normal-approximation inversion with CDF correction. *)
  let d = Dist.Binomial.create ~n:400 ~p:0.5 in
  chi_square_discrete "binomial n=400"
    ~pmf:(fun k -> Dist.Binomial.pmf d (k + 150))
    ~k_max:100
    (Array.map (fun k -> k - 150) (draws 203 (Dist.Binomial.sample d)))

let test_zipf () =
  let d = Dist.Zipf.create () in
  chi_square_discrete "zipf" ~pmf:(Dist.Zipf.pmf d) ~k_max:40
    (draws 204 (Dist.Zipf.sample d))

let test_poisson () =
  let d = Dist.Poisson_d.create ~mean:6.5 in
  chi_square_discrete "poisson mean=6.5" ~pmf:(Dist.Poisson_d.pmf d) ~k_max:18
    (draws 205 (Dist.Poisson_d.sample d))

let test_poisson_large_mean () =
  (* Large mean exercises the chunked product method. *)
  let d = Dist.Poisson_d.create ~mean:900. in
  chi_square_discrete "poisson mean=900"
    ~pmf:(fun k -> Dist.Poisson_d.pmf d (k + 780))
    ~k_max:240
    (Array.map (fun k -> k - 780) (draws 206 (Dist.Poisson_d.sample d)))

let suite =
  ( "dist-gof",
    [
      tc "exponential vs own cdf" test_exponential;
      tc "pareto vs own cdf" test_pareto;
      tc "pareto truncated vs conditional cdf" test_pareto_truncated;
      tc "lognormal vs own cdf" test_lognormal;
      tc "weibull vs own cdf" test_weibull;
      tc "gamma (shape 2.5) vs own cdf" test_gamma_large_shape;
      tc "gamma (shape 0.5) vs own cdf" test_gamma_small_shape;
      tc "normal vs own cdf" test_normal;
      tc "uniform vs own cdf" test_uniform;
      tc "log-extreme vs own cdf" test_log_extreme;
      tc "empirical of_samples self-consistent" test_empirical_of_samples;
      tc "empirical quantile table self-consistent"
        test_empirical_quantile_table;
      tc "tcplib interarrival self-consistent" test_tcplib_interarrival;
      tc "geometric vs own pmf" test_geometric;
      tc "binomial (n=20) vs own pmf" test_binomial;
      tc "binomial (n=400) vs own pmf" test_binomial_large;
      tc "zipf vs own pmf" test_zipf;
      tc "poisson (mean 6.5) vs own pmf" test_poisson;
      tc "poisson (mean 900) vs own pmf" test_poisson_large_mean;
    ] )

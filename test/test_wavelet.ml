(* The streamed wavelet cascade: octave energies fused into the
   aggregation pyramid must reproduce the batch Haar decomposition bit
   for bit under every chunking, survive the snapshot codec and the
   shard merge, and drive an estimator that recovers known H and stays
   unbiased under the trends that fool variance-time. *)
open Helpers

let bits = Int64.bits_of_float

(* Feed [xs] to a fresh pyramid in chunks cut at [cuts] (ascending
   positions; the tail after the last cut is one final chunk). *)
let pyramid_of_chunks xs cuts =
  let pyr = Timeseries.Pyramid.create () in
  let pos = ref 0 in
  List.iter
    (fun cut ->
      if cut > !pos then begin
        Timeseries.Pyramid.push_slice pyr xs !pos (cut - !pos);
        pos := cut
      end)
    (cuts @ [ Array.length xs ]);
  pyr

let check_octaves_bit_identical name batch streamed =
  check_int (name ^ ": octave count") (List.length batch)
    (List.length streamed);
  List.iter2
    (fun (b : Lrd.Wavelet.octave) (s : Lrd.Wavelet.octave) ->
      check_int (Printf.sprintf "%s: j=%d octave" name b.Lrd.Wavelet.j)
        b.Lrd.Wavelet.j s.Lrd.Wavelet.j;
      check_int (Printf.sprintf "%s: j=%d coeffs" name b.Lrd.Wavelet.j)
        b.Lrd.Wavelet.n_coeffs s.Lrd.Wavelet.n_coeffs;
      check_true
        (Printf.sprintf "%s: j=%d energy bits" name b.Lrd.Wavelet.j)
        (bits b.Lrd.Wavelet.log2_energy = bits s.Lrd.Wavelet.log2_energy))
    batch streamed

(* ---------------- Streamed = batch, bit for bit ---------------- *)

let test_streamed_equals_batch_chunkings () =
  let r = rng () in
  let xs = Array.init 3000 (fun _ -> Prng.Rng.float r *. 10.) in
  let batch = Lrd.Wavelet.decompose xs in
  List.iter
    (fun cuts ->
      let pyr = pyramid_of_chunks xs cuts in
      check_octaves_bit_identical
        (Printf.sprintf "%d cuts" (List.length cuts))
        batch
        (Lrd.Wavelet.octaves_of_pyramid pyr))
    [
      [];
      [ 1 ];
      [ 1; 2; 3 ];
      [ 7; 100; 101; 1033 ];
      [ 512; 1024; 2048 ];
      List.init 2999 (fun i -> i + 1);
    ]

let test_streamed_equals_batch_prop =
  prop ~count:100 "streamed octaves = batch under random chunking"
    QCheck.(
      pair (int_range 16 2500)
        (list_of_size Gen.(int_range 0 12) (int_range 1 2500)))
    (fun (n, raw_cuts) ->
      let r = rng ~seed:(n + (17 * List.length raw_cuts)) () in
      let xs = Array.init n (fun _ -> Prng.Rng.float r -. 0.5) in
      let cuts = List.sort_uniq compare (List.filter (fun c -> c < n) raw_cuts) in
      let batch = Lrd.Wavelet.decompose xs in
      let streamed =
        Lrd.Wavelet.octaves_of_pyramid (pyramid_of_chunks xs cuts)
      in
      List.length batch = List.length streamed
      && List.for_all2
           (fun (b : Lrd.Wavelet.octave) (s : Lrd.Wavelet.octave) ->
             b.Lrd.Wavelet.j = s.Lrd.Wavelet.j
             && b.Lrd.Wavelet.n_coeffs = s.Lrd.Wavelet.n_coeffs
             && bits b.Lrd.Wavelet.log2_energy
                = bits s.Lrd.Wavelet.log2_energy)
           batch streamed)

(* ---------------- Snapshot codec and shard merge ---------------- *)

let test_codec_roundtrips_energies () =
  let r = rng () in
  let xs = Array.init 777 (fun _ -> Prng.Rng.float r) in
  let pyr = pyramid_of_chunks xs [ 100; 300 ] in
  let snap = Timeseries.Pyramid.snapshot pyr in
  match
    Timeseries.Pyramid.snapshot_of_string
      (Timeseries.Pyramid.snapshot_to_string snap)
  with
  | Error e -> Alcotest.failf "codec round-trip failed: %s" e
  | Ok snap' ->
    check_octaves_bit_identical "codec round-trip"
      (Lrd.Wavelet.octaves_of_pyramid (Timeseries.Pyramid.of_snapshot snap))
      (Lrd.Wavelet.octaves_of_pyramid (Timeseries.Pyramid.of_snapshot snap'))

let test_merged_shards_equal_inline () =
  (* Aligned power-of-two shards: the merge contract [b <= 2^v2(a)]
     holds at every step, so energies at levels >= the boundary
     valuation are bit-exact and lower levels agree to merge-order
     rounding. *)
  let r = rng () in
  let xs = Array.init 4096 (fun _ -> Prng.Rng.float r *. 3.) in
  let inline = Lrd.Wavelet.octaves_of_pyramid (pyramid_of_chunks xs []) in
  List.iter
    (fun shards ->
      let shard_len = Array.length xs / shards in
      let dst = Timeseries.Pyramid.create () in
      for s = 0 to shards - 1 do
        let pyr = Timeseries.Pyramid.create () in
        Timeseries.Pyramid.push_slice pyr xs (s * shard_len) shard_len;
        Timeseries.Pyramid.merge_into dst (Timeseries.Pyramid.snapshot pyr)
      done;
      let merged = Lrd.Wavelet.octaves_of_pyramid dst in
      check_int
        (Printf.sprintf "%d shards: octave count" shards)
        (List.length inline) (List.length merged);
      List.iter2
        (fun (b : Lrd.Wavelet.octave) (s : Lrd.Wavelet.octave) ->
          check_int "octave" b.Lrd.Wavelet.j s.Lrd.Wavelet.j;
          check_int "coeffs" b.Lrd.Wavelet.n_coeffs s.Lrd.Wavelet.n_coeffs;
          let rel =
            Float.abs (s.Lrd.Wavelet.log2_energy -. b.Lrd.Wavelet.log2_energy)
            /. Float.max 1. (Float.abs b.Lrd.Wavelet.log2_energy)
          in
          check_true
            (Printf.sprintf "%d shards: j=%d energy within 1e-12" shards
               b.Lrd.Wavelet.j)
            (rel < 1e-12))
        inline merged)
    [ 2; 4; 8 ]

(* ---------------- Estimator recovery and robustness ---------------- *)

let test_estimate_recovers_fgn_within_ci () =
  List.iter
    (fun h ->
      let est = Lrd.Wavelet.estimate (fgn_fixture h) in
      let tol = Float.max 0.05 (3. *. est.Lrd.Wavelet.stderr_h) in
      check_true
        (Printf.sprintf "H=%.1f within CI (got %.3f +/- %.3f)" h
           est.Lrd.Wavelet.h est.Lrd.Wavelet.stderr_h)
        (Float.abs (est.Lrd.Wavelet.h -. h) <= tol))
    [ 0.5; 0.7; 0.9 ]

let test_diurnal_trend_robustness () =
  (* The estimator-agreement fixture: fGn H=0.7 plus a smooth one-cycle
     envelope. Variance-time must absorb the envelope as spurious long
     memory (bias > 0.1) while the wavelet fit stays within tolerance —
     the acceptance scenario of the logscale diagram. *)
  let row =
    List.find
      (fun (r : Core.Extensions2.estimators_row) ->
        r.Core.Extensions2.scenario = "fGn H=0.7 + diurnal trend")
      (Core.Extensions2.estimators_data ())
  in
  let wav = row.Core.Extensions2.e_wavelet in
  check_true "variance-time biased high"
    (row.Core.Extensions2.e_vt -. 0.7 > 0.1);
  check_true
    (Printf.sprintf "wavelet within CI (got %.3f +/- %.3f)"
       wav.Lrd.Wavelet.h wav.Lrd.Wavelet.stderr_h)
    (Float.abs (wav.Lrd.Wavelet.h -. 0.7)
    <= Float.max 0.05 (3. *. wav.Lrd.Wavelet.stderr_h))

let test_estimators_table_shape () =
  let rows = Core.Extensions2.estimators_data () in
  check_int "five scenarios" 5 (List.length rows);
  List.iter
    (fun (r : Core.Extensions2.estimators_row) ->
      check_true (r.Core.Extensions2.scenario ^ ": whittle finite")
        (Float.is_finite r.Core.Extensions2.e_whittle);
      check_true (r.Core.Extensions2.scenario ^ ": vt finite")
        (Float.is_finite r.Core.Extensions2.e_vt);
      check_true (r.Core.Extensions2.scenario ^ ": wavelet stderr positive")
        (r.Core.Extensions2.e_wavelet.Lrd.Wavelet.stderr_h > 0.))
    rows

(* ---------------- Edge cases ---------------- *)

let test_decompose_rejects_short () =
  check_invalid_arg "15 observations" "Wavelet.decompose" (fun () ->
      Lrd.Wavelet.decompose (Array.make 15 1.))

let test_estimate_rejects_degenerate_window () =
  (* Just over the decompose minimum the default [j_lo, j_hi] window is
     empty or a single octave: a named error, never a nan/0-stderr
     OLS. *)
  let r = rng () in
  List.iter
    (fun n ->
      check_invalid_arg
        (Printf.sprintf "n=%d default window" n)
        "Wavelet.estimate"
        (fun () ->
          Lrd.Wavelet.estimate
            (Array.init n (fun _ -> Prng.Rng.float r))))
    [ 16; 31; 33 ];
  (* An explicitly empty window fails the same way on any length. *)
  check_invalid_arg "empty explicit window" "Wavelet.estimate" (fun () ->
      Lrd.Wavelet.estimate ~j_lo:5 ~j_hi:4
        (Array.init 4096 (fun _ -> Prng.Rng.float r)))

let test_estimate_minimum_viable_length () =
  (* 64 observations is the smallest series the default window accepts:
     octaves 2 and 3 both reach 8 coefficients. *)
  let r = rng () in
  let est = Lrd.Wavelet.estimate (Array.init 64 (fun _ -> Prng.Rng.float r)) in
  check_int "j_lo" 2 est.Lrd.Wavelet.j_lo;
  check_int "j_hi" 3 est.Lrd.Wavelet.j_hi;
  check_true "finite H" (Float.is_finite est.Lrd.Wavelet.h);
  (* Two octaves fit exactly, so the residual stderr is legitimately 0
     — the error must be finite and non-negative, never nan. *)
  check_true "non-negative finite stderr"
    (Float.is_finite est.Lrd.Wavelet.stderr_h
    && est.Lrd.Wavelet.stderr_h >= 0.)

(* ---------------- The streaming stack ---------------- *)

let test_streaming_result_carries_wavelet () =
  let spec =
    { Core.Streaming.default with events = 2e4; rate = 100.; bin = 0.1 }
  in
  let r = Core.Streaming.run spec in
  (match r.Core.Streaming.h_wav with
  | None -> Alcotest.fail "streamed wavelet estimate missing"
  | Some w ->
    check_true "streamed wavelet H sane"
      (w.Lrd.Wavelet.h > 0.2 && w.Lrd.Wavelet.h < 0.8));
  let off = Core.Streaming.run { spec with wavelet = false } in
  check_true "read-out gated off" (off.Core.Streaming.h_wav = None)

let test_window_rolling_hw_finite () =
  let out = ref [] in
  let mgr =
    Core.Streaming.Window.create ~kind:Core.Streaming.Window.Tumbling
      ~window:256 ~top_k:16 ~bin:1.
      ~emit:(fun e -> out := e :: !out)
      ()
  in
  let r = rng () in
  for _ = 1 to 32 do
    let buf = Array.init 64 (fun _ -> Prng.Rng.float r *. 5.) in
    Core.Streaming.Window.push mgr buf
  done;
  check_true "estimates emitted" (List.length !out > 0);
  List.iter
    (fun (e : Core.Streaming.Window.estimate) ->
      check_true "rolling hw finite"
        (Float.is_finite e.Core.Streaming.Window.hw);
      check_true "rolling hw sane"
        (e.Core.Streaming.Window.hw > -0.5 && e.Core.Streaming.Window.hw < 1.5))
    !out

let suite =
  ( "wavelet-stream",
    [
      tc "streamed = batch, fixed chunkings" test_streamed_equals_batch_chunkings;
      test_streamed_equals_batch_prop;
      tc "codec round-trips energies" test_codec_roundtrips_energies;
      tc "merged shards = inline" test_merged_shards_equal_inline;
      tc "recovers fGn within CI" test_estimate_recovers_fgn_within_ci;
      tc "diurnal trend robustness" test_diurnal_trend_robustness;
      tc "estimator table shape" test_estimators_table_shape;
      tc "decompose rejects short" test_decompose_rejects_short;
      tc "estimate rejects degenerate window"
        test_estimate_rejects_degenerate_window;
      tc "minimum viable length" test_estimate_minimum_viable_length;
      tc "streaming result carries wavelet"
        test_streaming_result_carries_wavelet;
      tc "window rolling hw finite" test_window_rolling_hw_finite;
    ] )

(* PR 7: the multi-process trace farm — binary frame codec, pyramid
   snapshot wire format, and the sharded coordinator/worker drivers. *)

open Helpers

let bits = Int64.bits_of_float

let check_float_exact name a b =
  check_true name (bits a = bits b)

(* ---------------- Engine.Frame ---------------- *)

let test_frame_roundtrip_prop =
  prop ~count:300 "frame round-trip"
    QCheck.(pair (int_bound 255) string)
    (fun (kind, payload) ->
      let s = Engine.Frame.encode { Engine.Frame.kind; payload } in
      String.length s = String.length payload + Engine.Frame.overhead
      &&
      match Engine.Frame.decode s 0 with
      | Ok (f, pos) ->
        f.Engine.Frame.kind = kind
        && f.Engine.Frame.payload = payload
        && pos = String.length s
      | Error _ -> false)

let test_frame_stream_decode () =
  (* Concatenated frames decode sequentially, each handing back the
     offset of the next. *)
  let frames =
    List.map
      (fun (kind, payload) -> { Engine.Frame.kind; payload })
      [ (1, "alpha"); (2, ""); (255, String.make 1000 '\xee') ]
  in
  let s = String.concat "" (List.map Engine.Frame.encode frames) in
  let rec go pos acc =
    if pos = String.length s then List.rev acc
    else
      match Engine.Frame.decode s pos with
      | Ok (f, next) -> go next (f :: acc)
      | Error e -> Alcotest.fail (Engine.Frame.error_to_string e)
  in
  check_true "all frames recovered" (go 0 [] = frames)

let test_frame_truncation () =
  let s = Engine.Frame.encode { Engine.Frame.kind = 7; payload = "payload" } in
  for len = 0 to String.length s - 1 do
    match Engine.Frame.decode (String.sub s 0 len) 0 with
    | Error Engine.Frame.Truncated -> ()
    | Ok _ -> Alcotest.failf "prefix of %d bytes decoded" len
    | Error e ->
      Alcotest.failf "prefix of %d bytes: %s" len
        (Engine.Frame.error_to_string e)
  done

let test_frame_corruption () =
  let s = Engine.Frame.encode { Engine.Frame.kind = 7; payload = "payload" } in
  let flip pos =
    let b = Bytes.of_string s in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
    Bytes.to_string b
  in
  (match Engine.Frame.decode (flip 0) 0 with
  | Error Engine.Frame.Bad_magic -> ()
  | _ -> Alcotest.fail "corrupt magic accepted");
  (match Engine.Frame.decode (flip 2) 0 with
  | Error (Engine.Frame.Unsupported_version _) -> ()
  | _ -> Alcotest.fail "corrupt version accepted");
  (* Kind, payload and trailer corruption all land on the checksum. *)
  List.iter
    (fun pos ->
      match Engine.Frame.decode (flip pos) 0 with
      | Error Engine.Frame.Bad_checksum -> ()
      | _ -> Alcotest.failf "corrupt byte %d accepted" pos)
    [ 3; 8; 14; String.length s - 1 ]

let test_frame_oversized () =
  (* A length field past max_payload is rejected before allocating. *)
  let s = Engine.Frame.encode { Engine.Frame.kind = 1; payload = "x" } in
  let b = Bytes.of_string s in
  Bytes.set_int32_le b 4 0x7fffffffl;
  match Engine.Frame.decode (Bytes.to_string b) 0 with
  | Error (Engine.Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized length accepted"

let test_frame_read_channel () =
  let path = Filename.temp_file "frame" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let f1 = { Engine.Frame.kind = 1; payload = "one" } in
      let f2 = { Engine.Frame.kind = 2; payload = String.make 300 'z' } in
      let oc = open_out_bin path in
      output_string oc (Engine.Frame.encode f1);
      output_string oc (Engine.Frame.encode f2);
      close_out oc;
      let ic = open_in_bin path in
      check_true "first" (Engine.Frame.read ic = Ok (Some f1));
      check_true "second" (Engine.Frame.read ic = Ok (Some f2));
      check_true "clean EOF" (Engine.Frame.read ic = Ok None);
      close_in ic;
      (* Truncate mid-frame: EOF inside a frame is a hard error, never
         a clean end of stream. *)
      let all = Engine.Frame.encode f1 ^ Engine.Frame.encode f2 in
      let oc = open_out_bin path in
      output_string oc (String.sub all 0 (String.length all - 5));
      close_out oc;
      let ic = open_in_bin path in
      check_true "first again" (Engine.Frame.read ic = Ok (Some f1));
      check_true "truncated tail"
        (Engine.Frame.read ic = Error Engine.Frame.Truncated);
      close_in ic)

(* ---------------- pyramid snapshot codec ---------------- *)

let random_snapshot ?(levels = []) seed =
  let r = rng ~seed () in
  let pyr = Timeseries.Pyramid.create ~levels () in
  for _ = 1 to 1 + Prng.Rng.int r 6 do
    let n = 1 + Prng.Rng.int r 700 in
    Timeseries.Pyramid.push pyr
      (Array.init n (fun _ -> 10. *. Prng.Rng.float r))
  done;
  Timeseries.Pyramid.snapshot pyr

let test_snapshot_codec_roundtrip () =
  for seed = 1 to 30 do
    let levels = if seed mod 3 = 0 then [ 10; 100 ] else [] in
    let s = random_snapshot ~levels seed in
    let wire = Timeseries.Pyramid.snapshot_to_string s in
    match Timeseries.Pyramid.snapshot_of_string wire with
    | Error e -> Alcotest.fail e
    | Ok s' ->
      (* Bit-exact round trip: re-serialization is byte-identical. *)
      check_true "round-trip bytes"
        (Timeseries.Pyramid.snapshot_to_string s' = wire)
  done

let test_snapshot_codec_merge_equals_inprocess () =
  (* Merging a round-tripped snapshot behaves bit-for-bit like merging
     the original: the farm's coordinator path = the in-process path. *)
  let r = rng ~seed:99 () in
  for _ = 1 to 20 do
    let n = 512 lsl Prng.Rng.int r 3 in
    let xs = Array.init (2 * n) (fun _ -> 5. +. Prng.Rng.float r) in
    let part lo len =
      let pyr = Timeseries.Pyramid.create () in
      Timeseries.Pyramid.push pyr (Array.sub xs lo len);
      Timeseries.Pyramid.snapshot pyr
    in
    let a = part 0 n and b = part n n in
    let through_wire s =
      match
        Timeseries.Pyramid.snapshot_of_string
          (Timeseries.Pyramid.snapshot_to_string s)
      with
      | Ok s -> s
      | Error e -> Alcotest.fail e
    in
    let direct = Timeseries.Pyramid.merge a b in
    let wired = Timeseries.Pyramid.merge (through_wire a) (through_wire b) in
    check_true "wire merge = in-process merge"
      (Timeseries.Pyramid.snapshot_to_string wired
      = Timeseries.Pyramid.snapshot_to_string direct)
  done

let test_snapshot_codec_rejects () =
  let wire = Timeseries.Pyramid.snapshot_to_string (random_snapshot 5) in
  (* Every strict prefix is rejected, never accepted or fatal. *)
  for len = 0 to String.length wire - 1 do
    match Timeseries.Pyramid.snapshot_of_string (String.sub wire 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "prefix of %d bytes accepted" len
  done;
  (match Timeseries.Pyramid.snapshot_of_string (wire ^ "\x00") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  let bad_version = Bytes.of_string wire in
  Bytes.set bad_version 0 '\x63';
  match Timeseries.Pyramid.snapshot_of_string (Bytes.to_string bad_version) with
  | Error e -> check_true "names the version" (String.length e > 0)
  | Ok _ -> Alcotest.fail "unknown codec version accepted"

(* ---------------- Core.Farm ---------------- *)

(* Small spec with several macro-shards: 100 bins, gen_bins = 8,
   macro_bins = 8 -> 13 shards. *)
let small_spec =
  { Core.Farm.default with
    events = 1e5;
    chunk = 8192;
    shards = 16;
    top_k = 16 }

let check_result_equal (a : Core.Farm.result) (b : Core.Farm.result) =
  check_int "bins" a.bins b.bins;
  check_int "macro_bins" a.macro_bins b.macro_bins;
  check_int "n_macro" a.n_macro b.n_macro;
  check_float_exact "total" a.total b.total;
  check_float_exact "mean" a.mean b.mean;
  check_float_exact "h" a.h_vt.Lrd.Hurst.h b.h_vt.Lrd.Hurst.h;
  check_float_exact "slope" a.h_vt.Lrd.Hurst.slope b.h_vt.Lrd.Hurst.slope;
  check_float_exact "r2" a.h_vt.Lrd.Hurst.r2 b.h_vt.Lrd.Hurst.r2;
  (match (a.h_wav, b.h_wav) with
  | None, None -> ()
  | Some wa, Some wb ->
    check_float_exact "wav h" wa.Lrd.Wavelet.h wb.Lrd.Wavelet.h;
    check_float_exact "wav slope" wa.Lrd.Wavelet.slope wb.Lrd.Wavelet.slope;
    check_float_exact "wav stderr" wa.Lrd.Wavelet.stderr_h
      wb.Lrd.Wavelet.stderr_h
  | _ -> Alcotest.fail "h_wav presence differs");
  check_float_exact "alpha" a.alpha b.alpha;
  check_int "levels" a.levels b.levels

let test_plan () =
  let p = Core.Farm.plan small_spec in
  check_int "bins" 100 p.Core.Farm.n_bins;
  check_int "gen bins" 8 p.Core.Farm.gen_bins;
  check_int "macro bins" 8 p.Core.Farm.macro_bins;
  check_int "macro count" 13 p.Core.Farm.n_macro;
  (* The grid depends on the spec only — never on the worker count. *)
  let p64 = Core.Farm.plan { small_spec with workers = 64 } in
  check_true "worker-count independent" (p = p64);
  List.iter
    (fun model ->
      match Core.Farm.plan { small_spec with model } with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "model %s accepted" model)
    [ "pareto"; "mginf"; "onoff"; "nonsense" ]

let test_inline_deterministic () =
  let a = Core.Farm.run_inline small_spec in
  let b = Core.Farm.run_inline small_spec in
  check_result_equal a b;
  (* Sanity of the read-outs for a Poisson stream: total within 2% of
     the expectation, mean/bin near rate * bin, H near 1/2. *)
  check_true "total sane" (Float.abs (a.total -. 1e5) < 2e3);
  check_true "mean sane" (Float.abs (a.mean -. 1000.) < 20.);
  check_true "H sane"
    (a.h_vt.Lrd.Hurst.h > 0.2 && a.h_vt.Lrd.Hurst.h < 0.8);
  check_true "wavelet read-out present" (a.h_wav <> None);
  check_true "alpha positive" (a.alpha > 0.)

let wanpoisson_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/wanpoisson.exe"

let test_farm_process_equals_inline () =
  let inline = Core.Farm.run_inline small_spec in
  List.iter
    (fun workers ->
      match
        Core.Farm.run ~exe:wanpoisson_exe { small_spec with workers }
      with
      | Error e -> Alcotest.failf "workers=%d: %s" workers e
      | Ok (r, _obs) -> check_result_equal inline r)
    [ 1; 2; 5 ]

let test_farm_crash_detected () =
  match
    Core.Farm.run ~exe:wanpoisson_exe
      { small_spec with workers = 3; inject_crash = 1 }
  with
  | Ok _ -> Alcotest.fail "crashed worker went unnoticed"
  | Error e ->
    let mentions needle =
      let rec go i =
        i + String.length needle <= String.length e
        && (String.sub e i (String.length needle) = needle || go (i + 1))
      in
      go 0
    in
    check_true "names the worker" (mentions "worker 1");
    check_true "names the signal" (mentions "SIGKILL")

(* ---------------- observability frames (PR 9) ---------------- *)

let sample_telemetry_events =
  [
    {
      Engine.Telemetry.ev_name = "shard";
      ev_task = Some "farm";
      ev_domain = 0;
      ev_start_us = 12.5;
      ev_dur_us = 340.25;
    };
    {
      Engine.Telemetry.ev_name = "gen";
      ev_task = None;
      ev_domain = 1;
      ev_start_us = 400.;
      ev_dur_us = 0.;
    };
  ]

let sample_log_events =
  [
    {
      Engine.Log.seq = 3;
      t_us = 99.5;
      ev_level = Engine.Log.Warn;
      ev_name = "farm.slow_shard";
      ev_task = Some "farm";
      ev_domain = 0;
      fields = [ ("shard", Engine.Log.I 7); ("s", Engine.Log.F 1.25) ];
    };
  ]

let sample_heartbeat =
  {
    Engine.Obs_frame.hb_index = 2;
    hb_events = 51200;
    hb_shards = 3;
    hb_rate = 1.25e6;
    hb_rss_kb = -1;
  }

let obs_frames () =
  [
    Engine.Obs_frame.telemetry_frame ~index:3 ~epoch_unix_s:1722.5
      sample_telemetry_events;
    Engine.Obs_frame.logs_frame ~index:1 sample_log_events;
    Engine.Obs_frame.heartbeat_frame sample_heartbeat;
  ]

let test_obs_frame_roundtrip () =
  let check_kind f k = check_int "kind" k f.Engine.Frame.kind in
  (match obs_frames () with
  | [ tf; lf; hf ] ->
    check_kind tf Engine.Obs_frame.kind_telemetry;
    check_kind lf Engine.Obs_frame.kind_logs;
    check_kind hf Engine.Obs_frame.kind_heartbeat;
    List.iter
      (fun f -> check_true "is_obs" (Engine.Obs_frame.is_obs f))
      [ tf; lf; hf ];
    check_true "heartbeat predicate" (Engine.Obs_frame.is_heartbeat hf);
    check_true "telemetry not heartbeat"
      (not (Engine.Obs_frame.is_heartbeat tf));
    (match Engine.Obs_frame.decode tf with
    | Ok (Engine.Obs_frame.Telemetry (i, epoch, evs)) ->
      check_int "telemetry index" 3 i;
      check_float_exact "telemetry epoch" 1722.5 epoch;
      check_true "span table survives" (evs = sample_telemetry_events)
    | _ -> Alcotest.fail "telemetry decode");
    (match Engine.Obs_frame.decode lf with
    | Ok (Engine.Obs_frame.Logs (i, evs)) ->
      check_int "logs index" 1 i;
      check_true "log events survive" (evs = sample_log_events)
    | _ -> Alcotest.fail "logs decode");
    (match Engine.Obs_frame.decode hf with
    | Ok (Engine.Obs_frame.Heartbeat hb) ->
      check_true "heartbeat survives" (hb = sample_heartbeat)
    | _ -> Alcotest.fail "heartbeat decode")
  | _ -> assert false);
  (* Analysis kinds are not obs frames and never decode as one. *)
  let analysis = { Engine.Frame.kind = 1; payload = "x" } in
  check_true "analysis not obs" (not (Engine.Obs_frame.is_obs analysis));
  match Engine.Obs_frame.decode analysis with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "analysis frame decoded as obs"

let test_obs_frame_corruption () =
  (* Per-byte corruption of each encoded obs frame: every single-bit
     flip must be caught (magic/version/length checks or the SHA-256
     trailer) — never decode to an Ok frame. *)
  List.iter
    (fun f ->
      let s = Engine.Frame.encode f in
      for pos = 0 to String.length s - 1 do
        let b = Bytes.of_string s in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
        match Engine.Frame.decode (Bytes.to_string b) 0 with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "kind %d: corrupt byte %d accepted"
                    f.Engine.Frame.kind pos
      done)
    (obs_frames ())

let test_farm_stall_detected () =
  match
    Core.Farm.run ~exe:wanpoisson_exe
      { small_spec with
        workers = 2;
        inject_stall = 1;
        heartbeat_s = 0.1;
        stall_timeout_s = 0.8 }
  with
  | Ok _ -> Alcotest.fail "stalled worker went unnoticed"
  | Error e ->
    let mentions needle =
      let rec go i =
        i + String.length needle <= String.length e
        && (String.sub e i (String.length needle) = needle || go (i + 1))
      in
      go 0
    in
    check_true "names the worker" (mentions "worker 1");
    check_true "calls it stalled" (mentions "stalled")

let test_farm_trace_merge () =
  Engine.Telemetry.set_enabled true;
  Engine.Telemetry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Engine.Telemetry.reset ();
      Engine.Telemetry.set_enabled false)
    (fun () ->
      match
        Core.Farm.run ~exe:wanpoisson_exe
          { small_spec with workers = 3; trace = true; metrics = true }
      with
      | Error e -> Alcotest.fail e
      | Ok (_, obs) ->
        check_int "one span table per worker" 3
          (List.length obs.Core.Farm.o_spans);
        check_int "one counter rollup per worker" 3
          (List.length obs.Core.Farm.o_counters);
        check_int "one report per worker" 3
          (List.length obs.Core.Farm.o_workers);
        List.iter
          (fun (w : Core.Farm.worker_report) ->
            check_true "worker exited cleanly" (w.w_status = "exited 0");
            check_true "worker counted events" (w.w_events > 0);
            check_true "worker ran shards" (w.w_shards > 0))
          obs.Core.Farm.o_workers;
        let lanes = Core.Farm.trace_processes obs in
        check_int "coordinator + one lane per worker" 4 (List.length lanes);
        check_true "coordinator lane first"
          ((List.hd lanes).Engine.Telemetry.pr_label = "coordinator");
        List.iteri
          (fun i (p : Engine.Telemetry.process) ->
            if i > 0 then begin
              check_true "worker lane label"
                (p.pr_label = Printf.sprintf "worker %d" (i - 1));
              check_true "worker lane has spans" (p.pr_events <> [])
            end)
          lanes;
        let json = Engine.Telemetry.to_chrome_trace_multi lanes in
        let count c =
          String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 json
        in
        check_int "balanced braces" (count '{') (count '}');
        check_int "balanced brackets" (count '[') (count ']');
        let has needle =
          let rec go i =
            i + String.length needle <= String.length json
            && (String.sub json i (String.length needle) = needle
               || go (i + 1))
          in
          go 0
        in
        check_true "trace names worker 2" (has "\"worker 2\"");
        check_true "trace names the coordinator" (has "\"coordinator\""))

let test_manifest_farm_workers () =
  let rows =
    [
      {
        Engine.Manifest.wk_index = 0;
        wk_status = "exited 0";
        wk_events = 50000;
        wk_shards = 7;
        wk_wall_s = 1.5;
        wk_rss_kb = 20480;
        wk_stalled = false;
      };
      {
        Engine.Manifest.wk_index = 1;
        wk_status = "killed by SIGKILL";
        wk_events = 0;
        wk_shards = 0;
        wk_wall_s = 0.25;
        wk_rss_kb = -1;
        wk_stalled = true;
      };
    ]
  in
  let m =
    Engine.Manifest.of_run ~farm_workers:rows ~created_at:0. ~seed:1 ~jobs:2
      ~total_s:0.5 []
  in
  (match Engine.Manifest.parse (Engine.Manifest.to_string m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    check_true "worker rows survive the round-trip"
      (m'.Engine.Manifest.farm_workers = rows));
  (* A manifest without farm rows omits the key entirely, so pre-farm
     consumers (and manifests) interoperate. *)
  let plain =
    Engine.Manifest.of_run ~created_at:0. ~seed:1 ~jobs:2 ~total_s:0.5 []
  in
  let text = Engine.Manifest.to_string plain in
  let has needle =
    let rec go i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check_true "no farm_workers key when empty" (not (has "farm_workers"));
  (match Engine.Manifest.parse text with
  | Error e -> Alcotest.fail e
  | Ok p -> check_true "parses to empty" (p.Engine.Manifest.farm_workers = []));
  (* Worker placement differing is provenance, never divergence. *)
  let d = Engine.Manifest.compare_manifests m plain in
  check_true "still identical" d.Engine.Manifest.identical;
  check_true "noted as benign"
    (List.exists
       (fun n ->
         String.length n >= 12 && String.sub n 0 12 = "farm workers")
       d.Engine.Manifest.notes)

let suite =
  ( "farm",
    [
      test_frame_roundtrip_prop;
      tc "frame stream decode" test_frame_stream_decode;
      tc "frame truncation rejected" test_frame_truncation;
      tc "frame corruption rejected" test_frame_corruption;
      tc "frame oversized rejected" test_frame_oversized;
      tc "frame channel read" test_frame_read_channel;
      tc "snapshot codec round-trip" test_snapshot_codec_roundtrip;
      tc "snapshot wire merge = in-process merge"
        test_snapshot_codec_merge_equals_inprocess;
      tc "snapshot codec rejects malformed input" test_snapshot_codec_rejects;
      tc "plan: fixed grid, poisson-only" test_plan;
      tc "run_inline deterministic + sane" test_inline_deterministic;
      tc "farm processes = inline (workers 1/2/5)"
        test_farm_process_equals_inline;
      tc "killed worker detected" test_farm_crash_detected;
      tc "obs frame round-trip (kinds 16/17/18)" test_obs_frame_roundtrip;
      tc "obs frame per-byte corruption rejected" test_obs_frame_corruption;
      tc "stalled worker detected via heartbeats" test_farm_stall_detected;
      tc "merged trace: one lane per worker" test_farm_trace_merge;
      tc "manifest farm worker rows" test_manifest_farm_workers;
    ] )

(* Tests for packet-trace I/O, Welch periodograms, cwnd tracking, golden
   regression values of the deterministic catalog, and the summary /
   cwnd experiments. *)
open Helpers

(* ---------------- Packet IO ---------------- *)

let small_pkt =
  lazy
    (let spec =
       {
         (Option.get (Trace.Packet_dataset.find "LBL-PKT-5")) with
         Trace.Packet_dataset.duration = 300.;
         telnet_conns_per_hour = 200.;
         ftp_sessions_per_hour = 60.;
         background_conns_per_sec = 0.2;
       }
     in
     Trace.Packet_io.of_packet_dataset (Trace.Packet_dataset.generate spec))

let test_packet_io_flatten () =
  let t = Lazy.force small_pkt in
  check_true "packets present" (Array.length t.Trace.Packet_io.packets > 500);
  let sorted = ref true in
  let prev = ref neg_infinity in
  Array.iter
    (fun (time, _) ->
      if time < !prev then sorted := false;
      prev := time)
    t.Trace.Packet_io.packets;
  check_true "sorted by time" !sorted

let test_packet_io_times_filter () =
  let t = Lazy.force small_pkt in
  let all = Trace.Packet_io.times t () in
  let telnet = Trace.Packet_io.times t ~protocol:Trace.Record.Telnet () in
  let ftp = Trace.Packet_io.times t ~protocol:Trace.Record.Ftpdata () in
  let other = Trace.Packet_io.times t ~protocol:Trace.Record.Nntp () in
  check_int "components partition the total"
    (Array.length all)
    (Array.length telnet + Array.length ftp + Array.length other);
  check_int "no www packets" 0
    (Array.length (Trace.Packet_io.times t ~protocol:Trace.Record.Www ()))

let test_packet_io_roundtrip () =
  let t = Lazy.force small_pkt in
  let path = Filename.temp_file "pkt" ".txt" in
  Trace.Packet_io.save path t;
  let t' = Trace.Packet_io.load path in
  Sys.remove path;
  Alcotest.(check string) "name" t.Trace.Packet_io.name t'.Trace.Packet_io.name;
  check_close "span" t.Trace.Packet_io.span t'.Trace.Packet_io.span;
  check_int "packet count" (Array.length t.Trace.Packet_io.packets)
    (Array.length t'.Trace.Packet_io.packets);
  let time0, proto0 = t.Trace.Packet_io.packets.(0) in
  let time0', proto0' = t'.Trace.Packet_io.packets.(0) in
  check_close "first time" ~eps:1e-5 time0 time0';
  Alcotest.(check bool) "first proto" true (proto0 = proto0')

let test_packet_io_rejects_garbage () =
  let path = Filename.temp_file "pkt" ".txt" in
  let oc = open_out path in
  output_string oc "junk\n";
  close_out oc;
  Alcotest.check_raises "bad header"
    (Failure "bad packet-trace header, expected pkttrace") (fun () ->
      ignore (Trace.Packet_io.load path));
  Sys.remove path

(* ---------------- Welch periodogram ---------------- *)

let test_welch_shape () =
  let r = rng () in
  let xs = Array.init 1024 (fun _ -> Prng.Rng.float r) in
  let w = Timeseries.Periodogram.welch ~segments:8 xs in
  (* 8 segments of 128 samples -> 63 ordinates. *)
  check_int "ordinates" 63 (Array.length w.Timeseries.Periodogram.freqs)

let test_welch_reduces_variance () =
  (* For white noise the raw periodogram ordinates have CV ~ 1; Welch
     averaging over 8 segments cuts the spread strongly. *)
  let r = rng () in
  let xs = Array.init 4096 (fun _ -> Prng.Rng.float r -. 0.5) in
  let raw = Timeseries.Periodogram.compute xs in
  let welch = Timeseries.Periodogram.welch ~segments:8 xs in
  let cv p =
    Stats.Descriptive.std p.Timeseries.Periodogram.power
    /. mean p.Timeseries.Periodogram.power
  in
  check_true "smoothing works" (cv welch < cv raw /. 1.8)

let test_welch_preserves_level () =
  let r = rng () in
  let xs = Array.init 4096 (fun _ -> Prng.Rng.float r -. 0.5) in
  let raw = Timeseries.Periodogram.compute xs in
  let welch = Timeseries.Periodogram.welch ~segments:8 xs in
  check_close "mean spectral level preserved" ~eps:0.15
    (mean raw.Timeseries.Periodogram.power /. mean welch.Timeseries.Periodogram.power)
    1.

(* ---------------- cwnd tracking ---------------- *)

let test_cwnd_samples_recorded () =
  let config =
    {
      Tcpsim.Bottleneck.link_rate = 100.;
      buffer = 8;
      horizon = 60.;
      initial_ssthresh = 1000.;
    }
  in
  let r =
    Tcpsim.Bottleneck.run ~config
      [ { Tcpsim.Bottleneck.flow_start = 0.; flow_packets = 100_000;
          flow_rtt = 0.1 } ]
  in
  let f = List.hd r.Tcpsim.Bottleneck.flows in
  let samples = f.Tcpsim.Bottleneck.cwnd_samples in
  check_true "many samples" (Array.length samples > 100);
  Array.iter
    (fun (t, w) ->
      check_true "time in horizon" (t >= 0. && t <= 60.5);
      check_true "cwnd at least 2" (w >= 2.))
    samples;
  (* The sawtooth: multiplicative decrease must appear. *)
  let drops = ref 0 in
  for i = 1 to Array.length samples - 1 do
    let _, w0 = samples.(i - 1) and _, w1 = samples.(i) in
    if w1 < w0 *. 0.75 then incr drops
  done;
  check_true "window halvings observed" (!drops >= 3)

let test_cwnd_experiment () =
  let samples = Core.Extensions2.cwnd_data () in
  check_true "nonempty" (Array.length samples > 100);
  let peak = Array.fold_left (fun a (_, w) -> Float.max a w) 0. samples in
  let trough =
    Array.fold_left (fun a (_, w) -> Float.min a w) infinity samples
  in
  check_true "oscillates at least 2x" (peak > 2. *. trough)

(* ---------------- Golden regression values ---------------- *)

(* The catalog is seeded and deterministic: these exact values guard
   against accidental generator changes. If a model is retuned on
   purpose, update them alongside EXPERIMENTS.md. *)
let test_golden_dataset_counts () =
  let uk = Core.Cache.connection_trace "UK" in
  let n = Array.length uk.Trace.Record.connections in
  check_true
    (Printf.sprintf "UK connection count stable (%d)" n)
    (n > 10_000 && n < 25_000);
  let a = Trace.Dataset.generate ~days:0.1 (Option.get (Trace.Dataset.find "BC")) in
  let b = Trace.Dataset.generate ~days:0.1 (Option.get (Trace.Dataset.find "BC")) in
  check_int "regeneration is bit-stable"
    (Array.length a.Trace.Record.connections)
    (Array.length b.Trace.Record.connections)

let test_golden_tcplib () =
  (* Calibration constants that must never drift silently. *)
  check_close "mean" ~eps:1e-6 1.1
    (Dist.Empirical.mean Tcplib.Telnet.interarrival
    |> fun m -> Float.round (m *. 1e6) /. 1e6);
  check_close "P[<8ms]" ~eps:1e-3 0.020
    (Dist.Empirical.cdf Tcplib.Telnet.interarrival 0.008)

let test_summary_experiment_renders () =
  let s =
    (Engine.Task.run
       (Engine.Task.make ~id:"x-summary" ~title:"" Core.Extensions2.summary))
      .Engine.Artifact.text
  in
  check_true "mentions BC" (String.length s > 200)

let suite =
  ( "misc-extensions-3",
    [
      tc "packet io flatten" test_packet_io_flatten;
      tc "packet io filter" test_packet_io_times_filter;
      tc "packet io roundtrip" test_packet_io_roundtrip;
      tc "packet io rejects garbage" test_packet_io_rejects_garbage;
      tc "welch shape" test_welch_shape;
      tc "welch smooths" test_welch_reduces_variance;
      tc "welch level" test_welch_preserves_level;
      tc "cwnd samples" test_cwnd_samples_recorded;
      tc "cwnd experiment" test_cwnd_experiment;
      tc "golden dataset counts" test_golden_dataset_counts;
      tc "golden tcplib calibration" test_golden_tcplib;
      tc "summary experiment" test_summary_experiment_renders;
    ] )

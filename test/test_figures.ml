(* Integration tests over the figure pipeline: these exercise the full
   synthetic-trace -> analysis stack and pin the paper's qualitative
   conclusions so regressions in any layer surface here. *)
open Helpers

let sum = Array.fold_left ( +. ) 0.

let test_fig1_profiles () =
  let data = Core.Fig_connection.fig1_data () in
  check_int "five curves" 5 (List.length data);
  List.iter
    (fun (label, fracs) ->
      check_int (label ^ " has 24 hours") 24 (Array.length fracs);
      check_close (label ^ " sums to 1") ~eps:1e-9 1. (sum fracs))
    data;
  let telnet = List.assoc "Telnet" data in
  check_true "telnet office-hours peak" (telnet.(10) > 4. *. telnet.(4));
  let nntp = List.assoc "NNTP" data in
  check_true "nntp flat" (nntp.(10) < 2. *. nntp.(4))

let test_fig2_battery () =
  let data = Core.Fig_connection.fig2_data () in
  check_true "substantial battery" (List.length data > 150);
  let rows label interval =
    List.filter
      (fun (r : Core.Fig_connection.fig2_row) ->
        r.arrivals = label && r.interval = interval)
      data
  in
  let poisson_count rs =
    List.length
      (List.filter
         (fun (r : Core.Fig_connection.fig2_row) ->
           r.verdict.Stest.Poisson_check.poisson)
         rs)
  in
  (* The paper's headline pattern. *)
  let telnet_1h = rows "TELNET" 3600. in
  check_true "TELNET mostly Poisson at 1h"
    (poisson_count telnet_1h * 3 > List.length telnet_1h * 2);
  let ftp_1h = rows "FTP" 3600. in
  check_true "FTP sessions mostly Poisson at 1h"
    (poisson_count ftp_1h * 3 > List.length ftp_1h * 2);
  check_int "FTPDATA never Poisson" 0 (poisson_count (rows "FTPDATA" 3600.));
  check_int "NNTP never Poisson" 0 (poisson_count (rows "NNTP" 3600.));
  check_int "SMTP never Poisson at 1h" 0 (poisson_count (rows "SMTP" 3600.));
  check_int "WWW never Poisson" 0 (poisson_count (rows "WWW" 3600.));
  (* Bursts improve at 10 minutes but stay mostly inconsistent. *)
  let bursts_10 = rows "FTPDATA-burst" 600. in
  let k = poisson_count bursts_10 in
  check_true "bursts intermediate at 10min"
    (k > 0 && k < List.length bursts_10)

let monotone xs =
  let ok = ref true in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) < xs.(i - 1) -. 1e-9 then ok := false
  done;
  !ok

let test_fig3_cdfs () =
  let d = Core.Fig_packet.fig3_data () in
  check_true "trace cdf monotone" (monotone d.Core.Fig_packet.trace_cdf);
  check_true "tcplib cdf monotone" (monotone d.Core.Fig_packet.tcplib_cdf);
  (* Above 0.1 s the synthetic trace and the Tcplib table agree well. *)
  let max_gap = ref 0. in
  Array.iteri
    (fun i g ->
      if g >= 0.1 then
        max_gap :=
          Float.max !max_gap
            (Float.abs
               (d.Core.Fig_packet.trace_cdf.(i)
               -. d.Core.Fig_packet.tcplib_cdf.(i))))
    d.Core.Fig_packet.grid;
  check_true
    (Printf.sprintf "agreement above 0.1 s (sup gap %.3f)" !max_gap)
    (!max_gap < 0.05);
  check_true "geometric mean below arithmetic"
    (d.Core.Fig_packet.geometric_mean < d.Core.Fig_packet.arithmetic_mean)

let vt_value curve m =
  let p =
    Array.to_list curve
    |> List.find (fun (p : Timeseries.Variance_time.point) -> p.m = m)
  in
  log10 p.Timeseries.Variance_time.normalised

let test_fig5_ordering () =
  let data = Core.Fig_packet.fig5_data () in
  check_int "four schemes" 4 (List.length data);
  let curve name = List.assoc name data in
  (* At intermediate aggregation the heavy-tailed schemes hold variance
     the Poisson ones lose. *)
  List.iter
    (fun m ->
      check_true
        (Printf.sprintf "TCPLIB above EXP at M=%d" m)
        (vt_value (curve "TCPLIB") m > vt_value (curve "EXP") m);
      check_true
        (Printf.sprintf "TRACE above VAR-EXP at M=%d" m)
        (vt_value (curve "TRACE") m > vt_value (curve "VAR-EXP") m))
    [ 10; 32; 100 ];
  (* TCPLIB tracks TRACE closely. *)
  let gap = Float.abs (vt_value (curve "TCPLIB") 32 -. vt_value (curve "TRACE") 32) in
  check_true (Printf.sprintf "TCPLIB ~ TRACE (gap %.3f)" gap) (gap < 0.08)

let test_fig6_variance_gap () =
  let d = Core.Fig_packet.fig6_data () in
  check_close "means agree" ~eps:3. d.Core.Fig_packet.trace_mean
    d.Core.Fig_packet.exp_mean;
  check_true "trace at least 1.4x burstier"
    (d.Core.Fig_packet.trace_variance > 1.4 *. d.Core.Fig_packet.exp_variance)

let test_fig8_spacings () =
  let data = Core.Fig_connection.fig8_data () in
  check_int "six datasets" 6 (List.length data);
  List.iter
    (fun (name, cdf) ->
      check_true (name ^ " cdf monotone") (monotone (Array.map snd cdf));
      (* Most intra-session spacings sit below the 4 s cutoff. *)
      let at4 =
        Array.fold_left
          (fun acc (g, v) -> if g <= 4. then Float.max acc v else acc)
          0. cdf
      in
      check_true
        (Printf.sprintf "%s bulk below 4s (%.2f)" name at4)
        (at4 > 0.7 && at4 < 1.))
    data

let test_fig9_concentration () =
  let data = Core.Fig_connection.fig9_data () in
  List.iter
    (fun (name, n_bursts, curve) ->
      check_true (name ^ " has bursts") (n_bursts > 100);
      check_true (name ^ " curve monotone") (monotone (Array.map snd curve));
      let _, top10 = curve.(Array.length curve - 1) in
      check_true
        (Printf.sprintf "%s top 10%% holds > 50%% (%.0f%%)" name top10)
        (top10 > 50.))
    data

let test_fig10_dominance_bounds () =
  let data = Core.Fig_packet.fig10_data () in
  List.iter
    (fun (d : Core.Fig_packet.burst_dominance) ->
      check_true "shares ordered"
        (d.share_top05 <= d.share_top2 +. 1e-9 && d.share_top2 <= 1.);
      Array.iteri
        (fun i total ->
          check_true "per-minute rates nest"
            (d.top05_rate.(i) <= d.top2_rate.(i) +. 1e-6
            && d.top2_rate.(i) <= total +. 1e-6))
        d.total_rate)
    data

let test_fig12_lrd () =
  let data = Core.Fig_selfsim.fig12_data () in
  check_int "five traces" 5 (List.length data);
  List.iter
    (fun (d : Core.Fig_selfsim.trace_selfsim) ->
      check_true
        (Printf.sprintf "%s clearly LRD (H=%.2f)" d.trace_name d.vt_hurst)
        (d.vt_hurst > 0.65 && d.vt_hurst < 1.05);
      check_true "whittle stderr small" (d.whittle.Lrd.Whittle.stderr < 0.02))
    data

let test_fig14_15_scaling () =
  let p14 = Core.Fig_selfsim.fig14_data () in
  let p15 = Core.Fig_selfsim.fig15_data () in
  let mean_burst p =
    mean
      (Array.of_list
         (List.map
            (fun (s : Lrd.Pareto_count.run_stats) -> s.mean_burst)
            p.Core.Fig_selfsim.stats))
  in
  let b14 = mean_burst p14 and b15 = mean_burst p15 in
  check_true
    (Printf.sprintf "bursts grow slowly with bin (%.1f -> %.1f)" b14 b15)
    (b15 > b14 && b15 < 5. *. b14)

let test_tables_render () =
  let render id body =
    (Engine.Task.run (Engine.Task.make ~id ~title:"" body)).Engine.Artifact.text
  in
  let s1 = render "table1" Core.Fig_connection.table1 in
  let s2 = render "table2" Core.Fig_packet.table2 in
  check_true "table1 lists LBL-8" (String.length s1 > 500);
  check_true "table2 lists WRL" (String.length s2 > 300)

let suite =
  ( "figures-integration",
    [
      tc "fig1 profiles" test_fig1_profiles;
      tc "fig2 battery pattern" test_fig2_battery;
      tc "fig3 cdf agreement" test_fig3_cdfs;
      tc "fig5 scheme ordering" test_fig5_ordering;
      tc "fig6 variance gap" test_fig6_variance_gap;
      tc "fig8 spacing cdfs" test_fig8_spacings;
      tc "fig9 concentration" test_fig9_concentration;
      tc "fig10 dominance bounds" test_fig10_dominance_bounds;
      tc "fig12 LRD" test_fig12_lrd;
      tc "fig14/15 scaling" test_fig14_15_scaling;
      tc "tables render" test_tables_render;
    ] )

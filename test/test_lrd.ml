open Helpers
open Lrd

(* ---------------- fGn ---------------- *)

let test_autocovariance_known () =
  check_close "lag 0 is sigma2" 2. (Fgn.autocovariance ~h:0.7 ~sigma2:2. 0);
  (* H = 0.5 is white noise: zero covariance at all positive lags. *)
  List.iter
    (fun k ->
      check_close
        (Printf.sprintf "white noise lag %d" k)
        ~eps:1e-12 0.
        (Fgn.autocovariance ~h:0.5 ~sigma2:1. k))
    [ 1; 2; 10 ];
  check_true "H>0.5 positive lag-1"
    (Fgn.autocovariance ~h:0.8 ~sigma2:1. 1 > 0.);
  check_true "H<0.5 negative lag-1"
    (Fgn.autocovariance ~h:0.3 ~sigma2:1. 1 < 0.)

let test_autocovariance_symmetry () =
  check_close "gamma(-k) = gamma(k)"
    (Fgn.autocovariance ~h:0.8 ~sigma2:1. 5)
    (Fgn.autocovariance ~h:0.8 ~sigma2:1. (-5))

let test_fgn_length_and_moments () =
  let r = rng () in
  let xs = Fgn.generate ~h:0.75 ~n:4096 r in
  check_int "length" 4096 (Array.length xs);
  check_close "zero mean" ~eps:0.1 0. (mean xs);
  check_close "unit variance" ~eps:0.12 1. (Stats.Descriptive.variance xs)

let test_fgn_sigma2 () =
  let r = rng () in
  let xs = Fgn.generate ~sigma2:4. ~h:0.6 ~n:4096 r in
  check_close "variance scales" ~eps:0.5 4. (Stats.Descriptive.variance xs)

let test_fgn_white_when_h_half () =
  let r = rng () in
  let xs = Fgn.generate ~h:0.5 ~n:8192 r in
  let acf = Stats.Descriptive.autocorrelation xs 1 in
  check_true "uncorrelated at H=0.5" (Float.abs acf < 0.05)

let test_fgn_empirical_acf_matches () =
  let r = rng () in
  let h = 0.85 in
  let xs = Fgn.generate ~h ~n:32768 r in
  let sample_acf = Stats.Descriptive.autocorrelation xs 1 in
  let theory = Fgn.autocovariance ~h ~sigma2:1. 1 in
  check_close "lag-1 acf matches theory" ~eps:0.05 theory sample_acf

let test_fbm_cumsum () =
  let path = Fgn.fbm_of_fgn [| 1.; -2.; 3. |] in
  Alcotest.(check (array (float 1e-12))) "cumsum" [| 1.; -1.; 2. |] path

let test_spectral_density_shape () =
  (* LRD: density diverges at 0; decreasing in lambda near 0. *)
  let f = Fgn.spectral_density ~h:0.8 in
  check_true "more power at lower frequency" (f 0.01 > f 0.1);
  check_true "positive at pi" (f Float.pi > 0.);
  (* H = 0.5 should be roughly flat (white noise). *)
  let g = Fgn.spectral_density ~h:0.5 in
  check_close "flat for white noise" ~eps:0.05 1. (g 0.1 /. g 2.)

(* ---------------- Hurst estimators ---------------- *)

let test_estimators_on_fgn () =
  let r = rng () in
  let xs = Fgn.generate ~h:0.8 ~n:16384 r in
  let vt = Hurst.variance_time xs in
  let rs = Hurst.rescaled_range xs in
  let pg = Hurst.periodogram_regression xs in
  check_close "variance-time" ~eps:0.1 0.8 vt.Hurst.h;
  check_close "R/S" ~eps:0.12 0.8 rs.Hurst.h;
  check_close "periodogram" ~eps:0.12 0.8 pg.Hurst.h

let test_estimators_on_white_noise () =
  let r = rng () in
  let xs = Array.init 16384 (fun _ -> Prng.Rng.float r) in
  let vt = Hurst.variance_time xs in
  check_close "white noise H=0.5 (vt)" ~eps:0.08 0.5 vt.Hurst.h;
  let pg = Hurst.periodogram_regression xs in
  check_close "white noise H=0.5 (pgram)" ~eps:0.12 0.5 pg.Hurst.h

let test_rs_r2 () =
  let r = rng () in
  let xs = Fgn.generate ~h:0.7 ~n:8192 r in
  let rs = Hurst.rescaled_range xs in
  check_true "R/S regression is tight" (rs.Hurst.r2 > 0.9)

(* ---------------- Whittle ---------------- *)

let test_whittle_recovers_h () =
  List.iter
    (fun h ->
      let xs = fgn_fixture ~seed_scale:1000. ~n:8192 h in
      let est = Whittle.estimate xs in
      check_close (Printf.sprintf "H=%.2f" h) ~eps:0.05 h est.Whittle.h)
    [ 0.55; 0.7; 0.85; 0.95 ]

let test_whittle_stderr () =
  let r = rng () in
  let xs = Fgn.generate ~h:0.8 ~n:8192 r in
  let est = Whittle.estimate xs in
  check_true "stderr positive and small"
    (est.Whittle.stderr > 0. && est.Whittle.stderr < 0.05)

let test_whittle_objective_minimum () =
  let r = rng () in
  let xs = Fgn.generate ~h:0.8 ~n:4096 r in
  let pgram = Timeseries.Periodogram.compute xs in
  let at = Whittle.objective pgram in
  let est = Whittle.estimate xs in
  check_true "objective at estimate below neighbours"
    (at est.Whittle.h <= at (est.Whittle.h +. 0.1)
    && at est.Whittle.h <= at (est.Whittle.h -. 0.1))

(* ---------------- Beran ---------------- *)

let test_beran_accepts_fgn () =
  let accepted =
    acceptance_over_seeds (fun r ->
        let xs = Fgn.generate ~h:0.8 ~n:8192 r in
        let est = Whittle.estimate xs in
        (Beran.test ~h:est.Whittle.h xs).Beran.consistent)
  in
  check_true (Printf.sprintf "accepts true fGn %d/20" accepted) (accepted >= 16)

let test_beran_rejects_wrong_h () =
  (* Test a strongly LRD series against the white-noise (H=0.5) shape. *)
  let r = rng () in
  let xs = Fgn.generate ~h:0.9 ~n:8192 r in
  let b = Beran.test ~h:0.5 xs in
  check_false "rejects H=0.5 for H=0.9 data" b.Beran.consistent

let test_beran_scale_invariance () =
  let r = rng () in
  let xs = Fgn.generate ~h:0.7 ~n:4096 r in
  let scaled = Array.map (fun x -> 17. *. x) xs in
  let b1 = Beran.test ~h:0.7 xs in
  let b2 = Beran.test ~h:0.7 scaled in
  check_close "T invariant under scaling" ~eps:1e-9 b1.Beran.t_stat
    b2.Beran.t_stat

(* ---------------- Pareto count process (Appendix C) ---------------- *)

let test_arrival_times_increasing () =
  let r = rng () in
  let ts = Pareto_count.arrival_times ~beta:1. ~a:1. ~n:1000 r in
  check_int "count" 1000 (Array.length ts);
  for i = 1 to 999 do
    check_true "strictly increasing" (ts.(i) > ts.(i - 1))
  done;
  check_true "gaps at least a" (ts.(0) >= 1.)

let test_count_process_total () =
  let r = rng () in
  let counts = Pareto_count.count_process ~beta:1. ~a:1. ~bin:10. ~bins:100 r in
  check_int "bins" 100 (Array.length counts);
  let total = Array.fold_left ( +. ) 0. counts in
  check_true "some arrivals" (total > 0.);
  (* All interarrivals >= a = 1, so at most bin/a arrivals per bin. *)
  Array.iter (fun c -> check_true "per-bin bound" (c <= 10.)) counts

let test_run_stats_handcrafted () =
  let counts = [| 0.; 1.; 2.; 0.; 0.; 3.; 0. |] in
  let s = Pareto_count.run_stats counts in
  check_int "bursts" 2 s.Pareto_count.n_bursts;
  check_int "lulls" 3 s.Pareto_count.n_lulls;
  check_close "mean burst" 1.5 s.Pareto_count.mean_burst;
  check_close "mean lull" (4. /. 3.) s.Pareto_count.mean_lull;
  check_close "occupancy" (3. /. 7.) s.Pareto_count.occupancy

let test_run_lengths () =
  let counts = [| 1.; 1.; 0.; 1. |] in
  Alcotest.(check (array int)) "bursts" [| 2; 1 |]
    (Pareto_count.burst_lengths counts);
  Alcotest.(check (array int)) "lulls" [| 1 |]
    (Pareto_count.lull_lengths counts)

let test_run_stats_empty_cases () =
  let all_empty = Pareto_count.run_stats [| 0.; 0. |] in
  check_int "no bursts" 0 all_empty.Pareto_count.n_bursts;
  check_true "mean burst nan" (Float.is_nan all_empty.Pareto_count.mean_burst);
  let all_full = Pareto_count.run_stats [| 1.; 1. |] in
  check_int "single burst" 1 all_full.Pareto_count.n_bursts;
  check_close "occupancy 1" 1. all_full.Pareto_count.occupancy

let test_expected_burst_bins () =
  check_close "beta=2 linear" 100. (Pareto_count.expected_burst_bins ~beta:2. ~a:1. ~b:100.);
  check_close "beta=1 log" (log 100.)
    (Pareto_count.expected_burst_bins ~beta:1. ~a:1. ~b:100.);
  check_close "beta=0.5 constant"
    (1. /. (1. -. (2. ** -0.5)))
    (Pareto_count.expected_burst_bins ~beta:0.5 ~a:1. ~b:100.)

let test_burst_scaling_beta1 () =
  (* Appendix C: for beta = 1 mean burst grows ~ log b while lulls stay
     invariant. *)
  let stats_at bin seed =
    Pareto_count.run_stats
      (Pareto_count.count_process ~beta:1. ~a:1. ~bin ~bins:800 (rng ~seed ()))
  in
  let s3 = stats_at 1e3 1 and s5 = stats_at 1e5 2 in
  check_true "bursts grow with b"
    (s5.Pareto_count.mean_burst > s3.Pareto_count.mean_burst);
  check_true "burst growth is modest (log, not linear)"
    (s5.Pareto_count.mean_burst < 5. *. s3.Pareto_count.mean_burst);
  check_true "lull scale roughly invariant"
    (s5.Pareto_count.mean_lull < 10. *. s3.Pareto_count.mean_lull
    && s3.Pareto_count.mean_lull < 10. *. s5.Pareto_count.mean_lull)

let suite =
  ( "lrd",
    [
      tc "fGn autocovariance known" test_autocovariance_known;
      tc "fGn autocovariance symmetric" test_autocovariance_symmetry;
      tc "fGn length and moments" test_fgn_length_and_moments;
      tc "fGn sigma2" test_fgn_sigma2;
      tc "fGn H=0.5 white" test_fgn_white_when_h_half;
      tc "fGn empirical acf" test_fgn_empirical_acf_matches;
      tc "fbm cumsum" test_fbm_cumsum;
      tc "spectral density shape" test_spectral_density_shape;
      tc "estimators on fGn" test_estimators_on_fgn;
      tc "estimators on white noise" test_estimators_on_white_noise;
      tc "R/S regression quality" test_rs_r2;
      tc "whittle recovers H" test_whittle_recovers_h;
      tc "whittle stderr" test_whittle_stderr;
      tc "whittle objective minimum" test_whittle_objective_minimum;
      tc "beran accepts fGn" test_beran_accepts_fgn;
      tc "beran rejects wrong H" test_beran_rejects_wrong_h;
      tc "beran scale invariance" test_beran_scale_invariance;
      tc "pareto arrivals increasing" test_arrival_times_increasing;
      tc "pareto count process" test_count_process_total;
      tc "run stats handcrafted" test_run_stats_handcrafted;
      tc "run lengths" test_run_lengths;
      tc "run stats empty cases" test_run_stats_empty_cases;
      tc "expected burst bins" test_expected_burst_bins;
      tc "burst scaling beta=1" test_burst_scaling_beta1;
    ] )

(* The execution engine: pool ordering and exception isolation, RNG
   stream derivation, CLI parsing, registry indexing, the domain-safe
   cache, and the headline guarantee — parallel runs produce artifacts
   byte-identical to sequential runs. *)

open Helpers

(* ---------------- Pool ---------------- *)

let test_pool_ordering () =
  let items = List.init 100 Fun.id in
  let results = Engine.Pool.map ~jobs:4 (fun i -> i * i) items in
  check_int "length preserved" 100 (List.length results);
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> check_int (Printf.sprintf "slot %d" i) (i * i) v
      | Error _ -> Alcotest.fail "unexpected error")
    results

let test_pool_sequential_matches_parallel () =
  let items = List.init 33 Fun.id in
  let f i = (7 * i) + 1 in
  let oks rs =
    List.map (function Ok v -> v | Error _ -> Alcotest.fail "error") rs
  in
  Alcotest.(check (list int))
    "jobs:1 = jobs:8"
    (oks (Engine.Pool.map ~jobs:1 f items))
    (oks (Engine.Pool.map ~jobs:8 f items))

let test_pool_exception_isolation () =
  let items = List.init 10 Fun.id in
  let f i = if i = 3 then failwith "boom" else 2 * i in
  let results = Engine.Pool.map ~jobs:4 f items in
  check_int "length preserved" 10 (List.length results);
  List.iteri
    (fun i r ->
      match (i, r) with
      | 3, Error (Failure msg) -> check_true "failure captured" (msg = "boom")
      | 3, _ -> Alcotest.fail "slot 3 should be the failure"
      | i, Ok v -> check_int (Printf.sprintf "slot %d" i) (2 * i) v
      | _, Error _ -> Alcotest.fail "only slot 3 may fail")
    results

(* ---------------- RNG streams ---------------- *)

let test_rng_derivation () =
  let draws rng = Array.init 8 (fun _ -> Prng.Rng.float rng) in
  let a = draws (Engine.Task.derive_rng ~seed:1 "fig5") in
  let b = draws (Engine.Task.derive_rng ~seed:1 "fig5") in
  let c = draws (Engine.Task.derive_rng ~seed:1 "fig6") in
  let d = draws (Engine.Task.derive_rng ~seed:2 "fig5") in
  check_true "same (seed, id) = same stream" (a = b);
  check_true "different id = different stream" (a <> c);
  check_true "different seed = different stream" (a <> d)

(* ---------------- Task ---------------- *)

let test_task_buffers_and_figures () =
  let task =
    Engine.Task.make ~id:"t" ~title:"T"
      ~figures:(fun () -> [ ("t-extra.svg", "<svg/>") ])
      (fun ctx ->
        Format.fprintf (Engine.Task.formatter ctx) "hello %d@." 42;
        Engine.Task.add_figure ctx ~name:"t-inline.txt" "inline")
  in
  let plain = Engine.Task.run task in
  check_true "text captured" (plain.Engine.Artifact.text = "hello 42\n");
  Alcotest.(check (list (pair string string)))
    "figures off by default"
    [ ("t-inline.txt", "inline") ]
    plain.Engine.Artifact.figures;
  let full = Engine.Task.run ~render_figures:true task in
  Alcotest.(check (list (pair string string)))
    "figures thunk appended"
    [ ("t-inline.txt", "inline"); ("t-extra.svg", "<svg/>") ]
    full.Engine.Artifact.figures

(* ---------------- Cli ---------------- *)

let parse argv = Engine.Cli.parse ~jobs_default:1 (Array.of_list ("bench" :: argv))

let test_cli_defaults () =
  match parse [] with
  | Engine.Cli.Config c ->
    check_true "default action" (c.action = Engine.Cli.Run);
    check_int "default jobs" 1 c.jobs;
    check_int "default seed" 0 c.seed;
    check_true "no filter" (c.only = []);
    check_true "no out" (c.out = None)
  | _ -> Alcotest.fail "empty argv must parse"

let test_cli_flags () =
  match parse [ "--jobs"; "4"; "--seed"; "7"; "--only"; "fig5,table1";
                "--only"; "fig6"; "--out"; "artifacts" ] with
  | Engine.Cli.Config c ->
    check_int "jobs" 4 c.jobs;
    check_int "seed" 7 c.seed;
    Alcotest.(check (list string)) "only accumulates"
      [ "fig5"; "table1"; "fig6" ] c.only;
    check_true "out" (c.out = Some "artifacts")
  | _ -> Alcotest.fail "flags must parse"

let test_cli_rejects_garbage () =
  let is_error = function Engine.Cli.Error _ -> true | _ -> false in
  check_true "unknown flag" (is_error (parse [ "--frobnicate" ]));
  check_true "trailing arg after --only id"
    (is_error (parse [ "--only"; "fig5"; "extra" ]));
  check_true "bare positional" (is_error (parse [ "fig5" ]));
  check_true "jobs 0" (is_error (parse [ "--jobs"; "0" ]));
  check_true "help is not an error"
    (match parse [ "--help" ] with Engine.Cli.Help _ -> true | _ -> false)

(* ---------------- Registry ---------------- *)

let test_registry_index () =
  let ids = Core.Registry.ids () in
  check_int "no duplicate ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      match Core.Registry.find id with
      | Some e -> check_true ("find " ^ id) (e.Core.Registry.id = id)
      | None -> Alcotest.fail ("find must resolve " ^ id))
    ids;
  check_true "unknown id is None" (Core.Registry.find "fig99" = None);
  check_int "tasks cover the registry"
    (List.length ids)
    (List.length (Core.Registry.tasks ()))

(* ---------------- Cache ---------------- *)

let test_cache_concurrent_hits () =
  Core.Cache.clear ();
  let before = Core.Cache.generation_count () in
  let fetch () = Core.Cache.connection_trace "LBL-1" in
  let domains = List.init 4 (fun _ -> Domain.spawn fetch) in
  let traces = List.map Domain.join domains in
  check_int "generated exactly once"
    (before + 1)
    (Core.Cache.generation_count ());
  match traces with
  | first :: rest ->
    List.iter
      (fun t -> check_true "all domains share one value" (t == first))
      rest
  | [] -> assert false

let test_cache_unknown_key () =
  check_true "unknown raises Not_found"
    (match Core.Cache.connection_trace "NO-SUCH-TRACE" with
     | _ -> false
     | exception Not_found -> true);
  (* The failed generation must not wedge the key for later callers. *)
  check_true "still raises on retry"
    (match Core.Cache.connection_trace "NO-SUCH-TRACE" with
     | _ -> false
     | exception Not_found -> true)

let test_memo_single_generation () =
  (* Concurrent domains asking for the same memo key run the thunk
     exactly once and share the value physically. *)
  Core.Cache.clear ();
  let key = "test-engine-memo" in
  let before = Core.Cache.generation_count_of ("memo:" ^ key) in
  let fetch () = Core.Cache.memo key (fun () -> Array.init 64 float_of_int) in
  let domains = List.init 4 (fun _ -> Domain.spawn fetch) in
  let values = fetch () :: List.map Domain.join domains in
  check_int "generated exactly once"
    (before + 1)
    (Core.Cache.generation_count_of ("memo:" ^ key));
  match values with
  | first :: rest ->
    List.iter
      (fun v -> check_true "all callers share one value" (v == first))
      rest
  | [] -> assert false

let test_memo_failed_thunk_retries () =
  Core.Cache.clear ();
  let key = "test-engine-memo-fail" in
  let attempts = ref 0 in
  let thunk () =
    incr attempts;
    if !attempts = 1 then failwith "flaky" else !attempts
  in
  check_true "first call raises"
    (match Core.Cache.memo key thunk with
     | _ -> false
     | exception Failure _ -> true);
  check_int "second call regenerates" 2 (Core.Cache.memo key thunk);
  check_int "third call is a hit" 2 (Core.Cache.memo key thunk)

(* ---------------- Par ---------------- *)

let test_par_determinism () =
  (* Same results, in order, for any domain budget — including zero —
     and the budget is restored after each map. *)
  let items = List.init 37 Fun.id in
  let f i = float_of_int (i * i) +. (1. /. float_of_int (i + 1)) in
  let expected = List.map f items in
  List.iter
    (fun budget ->
      Engine.Par.set_extra_domains budget;
      List.iter
        (fun chunk ->
          check_true
            (Printf.sprintf "budget %d chunk %d" budget chunk)
            (Engine.Par.map ~chunk f items = expected))
        [ 1; 4 ];
      check_int
        (Printf.sprintf "budget %d restored" budget)
        budget
        (Engine.Par.extra_domains ()))
    [ 0; 1; 3 ];
  Engine.Par.set_extra_domains 0

let test_par_rng_streams () =
  (* map_rng item streams depend only on (seed, key, index), never on
     the budget. *)
  let items = List.init 9 Fun.id in
  let f rng _i = Array.init 4 (fun _ -> Prng.Rng.float rng) in
  let run budget =
    Engine.Par.set_extra_domains budget;
    let r = Engine.Par.map_rng ~seed:5 ~key:"t" f items in
    Engine.Par.set_extra_domains 0;
    r
  in
  let seq = run 0 and par = run 3 in
  check_true "streams identical across budgets" (seq = par);
  check_true "streams differ per item"
    (List.length (List.sort_uniq compare seq) = List.length seq)

let test_par_first_exception () =
  Engine.Par.set_extra_domains 3;
  let f i = if i mod 5 = 3 then failwith (string_of_int i) else i in
  check_true "first item-order failure is re-raised"
    (match Engine.Par.map f (List.init 20 Fun.id) with
     | _ -> false
     | exception Failure msg -> msg = "3");
  Engine.Par.set_extra_domains 0;
  check_int "budget restored after failure" 0 (Engine.Par.extra_domains ())

(* ---------------- Determinism ---------------- *)

let strip_durations (a : Engine.Artifact.t) =
  (a.id, a.title, a.text, a.figures)

let test_parallel_determinism () =
  (* The headline guarantee: the full registry under --jobs 4 yields
     byte-identical artifacts to --jobs 1 at the same seed. *)
  let tasks = Core.Registry.tasks () in
  let run jobs =
    Engine.Pool.run ~jobs ~seed:0 tasks
    |> List.map (function
         | Ok a -> strip_durations a
         | Error e -> Alcotest.fail (Printexc.to_string e))
  in
  let seq = run 1 in
  let par = run 4 in
  check_int "same artifact count" (List.length seq) (List.length par);
  List.iter2
    (fun (id, title, text, figs) (id', title', text', figs') ->
      check_true ("order " ^ id) (id = id');
      check_true ("title " ^ id) (title = title');
      check_true ("text bytes " ^ id) (text = text');
      check_true ("figures " ^ id) (figs = figs'))
    seq par

let test_figure_determinism () =
  (* Figure thunks render identically across jobs counts too. *)
  let entries =
    List.filter_map Core.Registry.find [ "fig9"; "fig14" ]
  in
  let tasks = List.map Core.Registry.task entries in
  let run jobs = Engine.Pool.run ~jobs ~seed:0 ~figures:true tasks in
  let figs results =
    List.map
      (function
        | Ok (a : Engine.Artifact.t) -> a.figures
        | Error e -> Alcotest.fail (Printexc.to_string e))
      results
  in
  let seq = figs (run 1) in
  let par = figs (run 2) in
  check_true "figure bytes identical" (seq = par);
  List.iter
    (fun fl -> check_true "figure rendered" (List.length fl = 1))
    seq

let test_fig_data_generated_once () =
  (* An --out style run (report + SVG figure in one task) computes the
     underlying fig data once: both renderers hit the same memo key. *)
  Core.Cache.clear ();
  let key = "memo:fig14_data:1000" in
  let before = Core.Cache.generation_count_of key in
  let entry = Option.get (Core.Registry.find "fig14") in
  (match Engine.Pool.run ~jobs:1 ~seed:0 ~figures:true [ Core.Registry.task entry ] with
   | [ Ok (a : Engine.Artifact.t) ] ->
     check_true "figure rendered" (List.length a.figures = 1)
   | _ -> Alcotest.fail "fig14 failed");
  check_int "fig14 data generated exactly once"
    (before + 1)
    (Core.Cache.generation_count_of key)

let suite =
  ( "engine",
    [
      tc "pool ordering" test_pool_ordering;
      tc "pool seq = par" test_pool_sequential_matches_parallel;
      tc "pool exception isolation" test_pool_exception_isolation;
      tc "rng stream derivation" test_rng_derivation;
      tc "task buffers + figures" test_task_buffers_and_figures;
      tc "cli defaults" test_cli_defaults;
      tc "cli flags" test_cli_flags;
      tc "cli rejects garbage" test_cli_rejects_garbage;
      tc "registry index" test_registry_index;
      tc "cache concurrent hits" test_cache_concurrent_hits;
      tc "cache unknown key" test_cache_unknown_key;
      tc "memo single generation" test_memo_single_generation;
      tc "memo failed thunk retries" test_memo_failed_thunk_retries;
      tc "par determinism across budgets" test_par_determinism;
      tc "par rng streams" test_par_rng_streams;
      tc "par first exception" test_par_first_exception;
      tc "figure determinism across jobs" test_figure_determinism;
      tc "fig data generated once per run" test_fig_data_generated_once;
      Alcotest.test_case "full-registry determinism jobs 4 = jobs 1" `Slow
        test_parallel_determinism;
    ] )

(* The execution engine: pool ordering and exception isolation, RNG
   stream derivation, CLI parsing, registry indexing, the domain-safe
   cache, and the headline guarantee — parallel runs produce artifacts
   byte-identical to sequential runs. *)

open Helpers

(* ---------------- Pool ---------------- *)

let test_pool_ordering () =
  let items = List.init 100 Fun.id in
  let results = Engine.Pool.map ~jobs:4 (fun i -> i * i) items in
  check_int "length preserved" 100 (List.length results);
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> check_int (Printf.sprintf "slot %d" i) (i * i) v
      | Error _ -> Alcotest.fail "unexpected error")
    results

let test_pool_sequential_matches_parallel () =
  let items = List.init 33 Fun.id in
  let f i = (7 * i) + 1 in
  let oks rs =
    List.map (function Ok v -> v | Error _ -> Alcotest.fail "error") rs
  in
  Alcotest.(check (list int))
    "jobs:1 = jobs:8"
    (oks (Engine.Pool.map ~jobs:1 f items))
    (oks (Engine.Pool.map ~jobs:8 f items))

let test_pool_exception_isolation () =
  let items = List.init 10 Fun.id in
  let f i = if i = 3 then failwith "boom" else 2 * i in
  let results = Engine.Pool.map ~jobs:4 f items in
  check_int "length preserved" 10 (List.length results);
  List.iteri
    (fun i r ->
      match (i, r) with
      | 3, Error (Failure msg) -> check_true "failure captured" (msg = "boom")
      | 3, _ -> Alcotest.fail "slot 3 should be the failure"
      | i, Ok v -> check_int (Printf.sprintf "slot %d" i) (2 * i) v
      | _, Error _ -> Alcotest.fail "only slot 3 may fail")
    results

(* ---------------- RNG streams ---------------- *)

let test_rng_derivation () =
  let draws rng = Array.init 8 (fun _ -> Prng.Rng.float rng) in
  let a = draws (Engine.Task.derive_rng ~seed:1 "fig5") in
  let b = draws (Engine.Task.derive_rng ~seed:1 "fig5") in
  let c = draws (Engine.Task.derive_rng ~seed:1 "fig6") in
  let d = draws (Engine.Task.derive_rng ~seed:2 "fig5") in
  check_true "same (seed, id) = same stream" (a = b);
  check_true "different id = different stream" (a <> c);
  check_true "different seed = different stream" (a <> d)

(* ---------------- Task ---------------- *)

let test_task_buffers_and_figures () =
  let task =
    Engine.Task.make ~id:"t" ~title:"T"
      ~figures:(fun () -> [ ("t-extra.svg", "<svg/>") ])
      (fun ctx ->
        Format.fprintf (Engine.Task.formatter ctx) "hello %d@." 42;
        Engine.Task.add_figure ctx ~name:"t-inline.txt" "inline")
  in
  let plain = Engine.Task.run task in
  check_true "text captured" (plain.Engine.Artifact.text = "hello 42\n");
  Alcotest.(check (list (pair string string)))
    "figures off by default"
    [ ("t-inline.txt", "inline") ]
    plain.Engine.Artifact.figures;
  let full = Engine.Task.run ~render_figures:true task in
  Alcotest.(check (list (pair string string)))
    "figures thunk appended"
    [ ("t-inline.txt", "inline"); ("t-extra.svg", "<svg/>") ]
    full.Engine.Artifact.figures

(* ---------------- Cli ---------------- *)

let parse argv = Engine.Cli.parse ~jobs_default:1 (Array.of_list ("bench" :: argv))

let test_cli_defaults () =
  match parse [] with
  | Engine.Cli.Config c ->
    check_true "default action" (c.action = Engine.Cli.Run);
    check_int "default jobs" 1 c.jobs;
    check_int "default seed" 0 c.seed;
    check_true "no filter" (c.only = []);
    check_true "no out" (c.out = None);
    check_false "metrics off by default" c.metrics;
    check_true "no trace by default" (c.trace = None)
  | _ -> Alcotest.fail "empty argv must parse"

let test_cli_flags () =
  match parse [ "--jobs"; "4"; "--seed"; "7"; "--only"; "fig5,table1";
                "--only"; "fig6"; "--out"; "artifacts"; "--metrics";
                "--trace"; "t.json" ] with
  | Engine.Cli.Config c ->
    check_int "jobs" 4 c.jobs;
    check_int "seed" 7 c.seed;
    Alcotest.(check (list string)) "only accumulates"
      [ "fig5"; "table1"; "fig6" ] c.only;
    check_true "out" (c.out = Some "artifacts");
    check_true "metrics" c.metrics;
    check_true "trace" (c.trace = Some "t.json")
  | _ -> Alcotest.fail "flags must parse"

let test_cli_rejects_garbage () =
  let is_error = function Engine.Cli.Error _ -> true | _ -> false in
  check_true "unknown flag" (is_error (parse [ "--frobnicate" ]));
  check_true "trailing arg after --only id"
    (is_error (parse [ "--only"; "fig5"; "extra" ]));
  check_true "bare positional" (is_error (parse [ "fig5" ]));
  check_true "jobs 0" (is_error (parse [ "--jobs"; "0" ]));
  check_true "help is not an error"
    (match parse [ "--help" ] with Engine.Cli.Help _ -> true | _ -> false)

(* ---------------- Registry ---------------- *)

let test_registry_index () =
  let ids = Core.Registry.ids () in
  check_int "no duplicate ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      match Core.Registry.find id with
      | Some e -> check_true ("find " ^ id) (e.Core.Registry.id = id)
      | None -> Alcotest.fail ("find must resolve " ^ id))
    ids;
  check_true "unknown id is None" (Core.Registry.find "fig99" = None);
  check_int "tasks cover the registry"
    (List.length ids)
    (List.length (Core.Registry.tasks ()))

(* ---------------- Cache ---------------- *)

let test_cache_concurrent_hits () =
  Core.Cache.clear ();
  let before = Core.Cache.generation_count () in
  let fetch () = Core.Cache.connection_trace "LBL-1" in
  let domains = List.init 4 (fun _ -> Domain.spawn fetch) in
  let traces = List.map Domain.join domains in
  check_int "generated exactly once"
    (before + 1)
    (Core.Cache.generation_count ());
  match traces with
  | first :: rest ->
    List.iter
      (fun t -> check_true "all domains share one value" (t == first))
      rest
  | [] -> assert false

let test_cache_unknown_key () =
  check_true "unknown raises Not_found"
    (match Core.Cache.connection_trace "NO-SUCH-TRACE" with
     | _ -> false
     | exception Not_found -> true);
  (* The failed generation must not wedge the key for later callers. *)
  check_true "still raises on retry"
    (match Core.Cache.connection_trace "NO-SUCH-TRACE" with
     | _ -> false
     | exception Not_found -> true)

let test_memo_single_generation () =
  (* Concurrent domains asking for the same memo key run the thunk
     exactly once and share the value physically. *)
  Core.Cache.clear ();
  let key = "test-engine-memo" in
  let before = Core.Cache.generation_count_of ("memo:" ^ key) in
  let fetch () = Core.Cache.memo key (fun () -> Array.init 64 float_of_int) in
  let domains = List.init 4 (fun _ -> Domain.spawn fetch) in
  let values = fetch () :: List.map Domain.join domains in
  check_int "generated exactly once"
    (before + 1)
    (Core.Cache.generation_count_of ("memo:" ^ key));
  match values with
  | first :: rest ->
    List.iter
      (fun v -> check_true "all callers share one value" (v == first))
      rest
  | [] -> assert false

let test_memo_failed_thunk_retries () =
  Core.Cache.clear ();
  let key = "test-engine-memo-fail" in
  let attempts = ref 0 in
  let thunk () =
    incr attempts;
    if !attempts = 1 then failwith "flaky" else !attempts
  in
  check_true "first call raises"
    (match Core.Cache.memo key thunk with
     | _ -> false
     | exception Failure _ -> true);
  check_int "second call regenerates" 2 (Core.Cache.memo key thunk);
  check_int "third call is a hit" 2 (Core.Cache.memo key thunk)

(* ---------------- Par ---------------- *)

let test_par_determinism () =
  (* Same results, in order, for any domain budget — including zero —
     and the budget is restored after each map. *)
  let items = List.init 37 Fun.id in
  let f i = float_of_int (i * i) +. (1. /. float_of_int (i + 1)) in
  let expected = List.map f items in
  List.iter
    (fun budget ->
      Engine.Par.set_extra_domains budget;
      List.iter
        (fun chunk ->
          check_true
            (Printf.sprintf "budget %d chunk %d" budget chunk)
            (Engine.Par.map ~chunk f items = expected))
        [ 1; 4 ];
      check_int
        (Printf.sprintf "budget %d restored" budget)
        budget
        (Engine.Par.extra_domains ()))
    [ 0; 1; 3 ];
  Engine.Par.set_extra_domains 0

let test_par_rng_streams () =
  (* map_rng item streams depend only on (seed, key, index), never on
     the budget. *)
  let items = List.init 9 Fun.id in
  let f rng _i = Array.init 4 (fun _ -> Prng.Rng.float rng) in
  let run budget =
    Engine.Par.set_extra_domains budget;
    let r = Engine.Par.map_rng ~seed:5 ~key:"t" f items in
    Engine.Par.set_extra_domains 0;
    r
  in
  let seq = run 0 and par = run 3 in
  check_true "streams identical across budgets" (seq = par);
  check_true "streams differ per item"
    (List.length (List.sort_uniq compare seq) = List.length seq)

let test_par_first_exception () =
  Engine.Par.set_extra_domains 3;
  let f i = if i mod 5 = 3 then failwith (string_of_int i) else i in
  check_true "first item-order failure is re-raised"
    (match Engine.Par.map f (List.init 20 Fun.id) with
     | _ -> false
     | exception Failure msg -> msg = "3");
  Engine.Par.set_extra_domains 0;
  check_int "budget restored after failure" 0 (Engine.Par.extra_domains ())

(* ---------------- Pool budget accounting ---------------- *)

let test_pool_budget_restore () =
  (* Pool.map lends the leftover jobs budget to Par for the duration of
     the map only: workers observe it, and it is restored to zero on
     exit instead of leaking into the next caller's Par.map. *)
  Engine.Par.set_extra_domains 0;
  let observed = Atomic.make (-1) in
  let results =
    Engine.Pool.map ~jobs:8
      (fun i ->
        Atomic.set observed (Engine.Par.extra_domains ());
        i * 2)
      [ 1; 2; 3 ]
  in
  check_int "3 results" 3 (List.length results);
  (* 3 items cap the workers at 3, so 8 - 3 = 5 domains are on loan
     while the map runs. *)
  check_int "budget visible during map" 5 (Atomic.get observed);
  check_int "budget restored after map" 0 (Engine.Par.extra_domains ());
  (* The sequential branch lends jobs - 1 and restores too. *)
  ignore
    (Engine.Pool.map ~jobs:1
       (fun i ->
         Atomic.set observed (Engine.Par.extra_domains ());
         i)
       [ 1; 2; 3 ]);
  check_int "jobs=1 lends nothing" 0 (Atomic.get observed);
  check_int "budget still zero" 0 (Engine.Par.extra_domains ());
  (* A failing body must not leak the loan either. *)
  ignore (Engine.Pool.map ~jobs:8 (fun _ -> failwith "boom") [ 1; 2; 3 ]);
  check_int "budget restored after failures" 0 (Engine.Par.extra_domains ())

(* ---------------- Telemetry ---------------- *)

let with_telemetry f =
  Engine.Telemetry.set_enabled true;
  Engine.Telemetry.reset ();
  Fun.protect ~finally:(fun () -> Engine.Telemetry.set_enabled false) f

let test_telemetry_off_is_inert () =
  Engine.Telemetry.set_enabled false;
  Engine.Telemetry.reset ();
  let c = Engine.Telemetry.counter "test.inert" in
  Engine.Telemetry.bump c;
  Engine.Telemetry.add c 41;
  check_int "counter stays zero when off" 0 (Engine.Telemetry.value c);
  let v = Engine.Telemetry.span ~name:"off-span" (fun () -> 7 * 6) in
  check_int "span is transparent" 42 v;
  Engine.Telemetry.mark "off-mark";
  check_int "no events recorded" 0 (Engine.Telemetry.cursor ());
  check_true "task label unset" (Engine.Telemetry.current_task () = None)

let test_telemetry_span_nesting () =
  with_telemetry (fun () ->
      let v =
        Engine.Telemetry.with_task "t1" (fun () ->
            Engine.Telemetry.span ~name:"outer" (fun () ->
                Engine.Telemetry.span ~name:"inner" (fun () -> 3)))
      in
      check_int "value threaded through" 3 v;
      let evs = Engine.Telemetry.events () in
      let names =
        List.map (fun e -> e.Engine.Telemetry.ev_name) evs
        |> List.sort compare
      in
      Alcotest.(check (list string))
        "one event per span" [ "inner"; "outer"; "task:t1" ] names;
      List.iter
        (fun e ->
          check_true
            ("attributed " ^ e.Engine.Telemetry.ev_name)
            (e.Engine.Telemetry.ev_task = Some "t1");
          check_true
            ("has duration " ^ e.Engine.Telemetry.ev_name)
            (e.Engine.Telemetry.ev_dur_us >= 0.))
        evs;
      (* Nesting: inner starts no earlier and ends no later than outer. *)
      let find n =
        List.find (fun e -> e.Engine.Telemetry.ev_name = n) evs
      in
      let inner = find "inner" and outer = find "outer" in
      check_true "inner starts inside outer"
        (inner.Engine.Telemetry.ev_start_us
         >= outer.Engine.Telemetry.ev_start_us);
      check_true "inner ends inside outer"
        (inner.Engine.Telemetry.ev_start_us +. inner.Engine.Telemetry.ev_dur_us
         <= outer.Engine.Telemetry.ev_start_us
            +. outer.Engine.Telemetry.ev_dur_us
            +. 1.0 (* clock granularity slack, microseconds *)))

let test_telemetry_task_inherited_by_par () =
  (* Par worker domains are spawned inside the task, so the DLS label
     propagates and their spans attribute to the task. *)
  with_telemetry (fun () ->
      Engine.Par.set_extra_domains 2;
      let r =
        Engine.Telemetry.with_task "par-task" (fun () ->
            Engine.Par.map ~chunk:1
              (fun i ->
                Engine.Telemetry.span ~name:"item" (fun () -> i + 1))
              (List.init 8 Fun.id))
      in
      Engine.Par.set_extra_domains 0;
      check_true "par results intact" (r = List.init 8 (fun i -> i + 1));
      let items =
        List.filter
          (fun e -> e.Engine.Telemetry.ev_name = "item")
          (Engine.Telemetry.events ())
      in
      check_int "all item spans recorded" 8 (List.length items);
      List.iter
        (fun e ->
          check_true "worker span attributed to task"
            (e.Engine.Telemetry.ev_task = Some "par-task"))
        items)

let test_telemetry_counters_and_reset () =
  with_telemetry (fun () ->
      let a = Engine.Telemetry.counter "test.alpha" in
      let a' = Engine.Telemetry.counter "test.alpha" in
      check_true "registration idempotent"
        (Engine.Telemetry.bump a;
         Engine.Telemetry.value a' = 1);
      Engine.Telemetry.add a 9;
      check_int "add accumulates" 10 (Engine.Telemetry.value a);
      check_true "counters lists non-zero"
        (List.mem ("test.alpha", 10) (Engine.Telemetry.counters ()));
      Engine.Telemetry.reset ();
      check_int "reset zeroes" 0 (Engine.Telemetry.value a);
      check_true "zero counters hidden"
        (not
           (List.exists
              (fun (n, _) -> n = "test.alpha")
              (Engine.Telemetry.counters ()))))

let test_telemetry_task_metrics_since () =
  with_telemetry (fun () ->
      Engine.Telemetry.with_task "early" (fun () ->
          Engine.Telemetry.span ~name:"phase" (fun () -> ()));
      let since = Engine.Telemetry.cursor () in
      Engine.Telemetry.with_task "late" (fun () ->
          Engine.Telemetry.span ~name:"phase" (fun () -> ()));
      let late = Engine.Telemetry.task_metrics ~since "late" in
      check_true "late task sees its span"
        (List.mem_assoc "span:phase" late);
      check_true "late task sees its own wrapper"
        (List.mem_assoc "span:task:late" late);
      check_true "early events filtered by cursor"
        (Engine.Telemetry.task_metrics ~since "early" = []))

(* A miniature JSON syntax checker: enough to certify the Chrome trace
   export is well-formed without a JSON dependency. *)
let check_json name s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "%s: bad JSON at byte %d: %s" name !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () = match peek () with
    | Some c -> incr pos; c
    | None -> fail "unexpected end" in
  let rec ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> incr pos; ws ()
    | _ -> ()
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %c" c) in
  let string_lit () =
    expect '"';
    let rec go () =
      match next () with
      | '"' -> ()
      | '\\' -> ignore (next ()); go ()
      | c when Char.code c < 0x20 -> fail "raw control char in string"
      | _ -> go ()
    in
    go ()
  in
  let number () =
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let start = !pos in
    while (match peek () with Some c -> numchar c | None -> false) do
      incr pos
    done;
    if !pos = start then fail "expected number"
  in
  let rec value () =
    ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail "expected a value"
  and literal lit =
    String.iter (fun c -> if next () <> c then fail ("expected " ^ lit)) lit
  and obj () =
    expect '{';
    ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        ws (); string_lit (); ws (); expect ':'; value (); ws ();
        match next () with
        | ',' -> members ()
        | '}' -> ()
        | _ -> fail "expected , or } in object"
      in
      members ()
  and arr () =
    expect '[';
    ws ();
    if peek () = Some ']' then incr pos
    else
      let rec elements () =
        value (); ws ();
        match next () with
        | ',' -> elements ()
        | ']' -> ()
        | _ -> fail "expected , or ] in array"
      in
      elements ()
  in
  value ();
  ws ();
  if !pos <> n then fail "trailing garbage"

let count_substring hay needle =
  let rec go acc from =
    match String.index_from_opt hay from needle.[0] with
    | None -> acc
    | Some i ->
      if i + String.length needle <= String.length hay
         && String.sub hay i (String.length needle) = needle
      then go (acc + 1) (i + 1)
      else go acc (i + 1)
  in
  go 0 0

let test_telemetry_chrome_trace () =
  with_telemetry (fun () ->
      Engine.Telemetry.with_task "trace\"me" (fun () ->
          Engine.Telemetry.span ~name:"work" (fun () -> ());
          Engine.Telemetry.mark "tick");
      Engine.Telemetry.bump (Engine.Telemetry.counter "test.trace");
      let json = Engine.Telemetry.to_chrome_trace () in
      check_json "chrome trace" json;
      check_true "has traceEvents array"
        (count_substring json "\"traceEvents\"" = 1);
      (* Complete spans, the instant mark, the counter sample, and the
         per-domain process metadata are all present. *)
      check_int "complete events (work + task wrapper)" 2
        (count_substring json "\"ph\": \"X\"");
      check_int "instant mark" 1 (count_substring json "\"ph\": \"i\"");
      check_int "counter sample" 1 (count_substring json "\"ph\": \"C\"");
      check_true "process metadata"
        (count_substring json "\"ph\": \"M\"" >= 1);
      (* The quote in the task id must arrive escaped. *)
      check_true "task id escaped"
        (count_substring json "trace\\\"me" >= 1))

(* ---------------- Determinism ---------------- *)

let strip_durations (a : Engine.Artifact.t) =
  (a.id, a.title, a.text, a.figures)

let test_parallel_determinism () =
  (* The headline guarantee: the full registry under --jobs 4 yields
     byte-identical artifacts to --jobs 1 at the same seed. *)
  let tasks = Core.Registry.tasks () in
  let run jobs =
    Engine.Pool.run ~jobs ~seed:0 tasks
    |> List.map (function
         | Ok a -> strip_durations a
         | Error e -> Alcotest.fail (Printexc.to_string e))
  in
  let seq = run 1 in
  let par = run 4 in
  check_int "same artifact count" (List.length seq) (List.length par);
  List.iter2
    (fun (id, title, text, figs) (id', title', text', figs') ->
      check_true ("order " ^ id) (id = id');
      check_true ("title " ^ id) (title = title');
      check_true ("text bytes " ^ id) (text = text');
      check_true ("figures " ^ id) (figs = figs'))
    seq par

let test_figure_determinism () =
  (* Figure thunks render identically across jobs counts too. *)
  let entries =
    List.filter_map Core.Registry.find [ "fig9"; "fig14" ]
  in
  let tasks = List.map Core.Registry.task entries in
  let run jobs = Engine.Pool.run ~jobs ~seed:0 ~figures:true tasks in
  let figs results =
    List.map
      (function
        | Ok (a : Engine.Artifact.t) -> a.figures
        | Error e -> Alcotest.fail (Printexc.to_string e))
      results
  in
  let seq = figs (run 1) in
  let par = figs (run 2) in
  check_true "figure bytes identical" (seq = par);
  List.iter
    (fun fl -> check_true "figure rendered" (List.length fl = 1))
    seq

let test_telemetry_non_perturbation () =
  (* The telemetry contract: artifacts (text and figures) are
     byte-identical for a fixed seed across jobs counts AND across
     telemetry on/off — recording must never touch an RNG stream or an
     output buffer. Also: the scheduling-independent metrics totals
     (cache generations, Par items) agree between the telemetry runs at
     different jobs counts. *)
  let entries =
    List.filter_map Core.Registry.find [ "table1"; "fig14"; "x-pareto" ]
  in
  check_int "registry subset resolves" 3 (List.length entries);
  let tasks = List.map Core.Registry.task entries in
  let run ~jobs ~telemetry =
    (* Clear the cache so each configuration regenerates from scratch
       and the generation counters are comparable. *)
    Core.Cache.clear ();
    if telemetry then begin
      Engine.Telemetry.set_enabled true;
      Engine.Telemetry.reset ()
    end;
    let arts =
      Engine.Pool.run ~jobs ~seed:0 ~figures:true tasks
      |> List.map (function
           | Ok a -> strip_durations a
           | Error e -> Alcotest.fail (Printexc.to_string e))
    in
    let totals =
      if telemetry then
        ( Engine.Telemetry.value (Engine.Telemetry.counter "cache.generations"),
          Engine.Telemetry.value (Engine.Telemetry.counter "par.items") )
      else (0, 0)
    in
    Engine.Telemetry.set_enabled false;
    (arts, totals)
  in
  let base, _ = run ~jobs:1 ~telemetry:false in
  let configs =
    [ ("jobs=4 plain", run ~jobs:4 ~telemetry:false);
      ("jobs=1 telemetry", run ~jobs:1 ~telemetry:true);
      ("jobs=4 telemetry", run ~jobs:4 ~telemetry:true) ]
  in
  List.iter
    (fun (label, (arts, _)) ->
      List.iter2
        (fun (id, title, text, figs) (id', title', text', figs') ->
          check_true (label ^ ": id " ^ id) (id = id');
          check_true (label ^ ": title " ^ id) (title = title');
          check_true (label ^ ": text bytes " ^ id) (text = text');
          check_true (label ^ ": figure bytes " ^ id) (figs = figs'))
        base arts)
    configs;
  let totals_of label = List.assoc label configs |> snd in
  let g1, i1 = totals_of "jobs=1 telemetry" in
  let g4, i4 = totals_of "jobs=4 telemetry" in
  check_true "some cache generations counted" (g1 > 0);
  check_true "some par items counted" (i1 > 0);
  check_int "cache generations scheduling-independent" g1 g4;
  check_int "par items scheduling-independent" i1 i4

let test_artifact_metrics () =
  (* With telemetry on, Task.run attaches per-task metrics to the
     artifact; Artifact.save persists them next to the report. With
     telemetry off the metrics list is empty and no file is written. *)
  let entry = Option.get (Core.Registry.find "fig14") in
  let task = Core.Registry.task entry in
  Engine.Telemetry.set_enabled true;
  Engine.Telemetry.reset ();
  let a =
    match Engine.Pool.run ~jobs:1 ~seed:0 [ task ] with
    | [ Ok a ] -> a
    | _ -> Alcotest.fail "fig14 failed"
  in
  Engine.Telemetry.set_enabled false;
  check_true "metrics attached" (a.Engine.Artifact.metrics <> []);
  check_true "rng draw count present"
    (List.mem_assoc "rng.ctx_draws" a.Engine.Artifact.metrics);
  check_true "task wrapper span present"
    (List.mem_assoc "span:task:fig14" a.Engine.Artifact.metrics);
  check_json "metrics json" (Engine.Artifact.metrics_json a);
  let dir = Filename.temp_file "wanpoisson" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let written = Engine.Artifact.save ~dir a in
  check_true "metrics file written"
    (List.exists
       (fun p -> Filename.check_suffix p ".metrics.json")
       written);
  let plain =
    match Engine.Pool.run ~jobs:1 ~seed:0 [ task ] with
    | [ Ok a ] -> a
    | _ -> Alcotest.fail "fig14 failed (plain)"
  in
  check_true "no metrics when off" (plain.Engine.Artifact.metrics = []);
  List.iter Sys.remove (Array.to_list (Sys.readdir dir) |> List.map (Filename.concat dir));
  Sys.rmdir dir

let test_fig_data_generated_once () =
  (* An --out style run (report + SVG figure in one task) computes the
     underlying fig data once: both renderers hit the same memo key. *)
  Core.Cache.clear ();
  let key = "memo:fig14_data:1000" in
  let before = Core.Cache.generation_count_of key in
  let entry = Option.get (Core.Registry.find "fig14") in
  (match Engine.Pool.run ~jobs:1 ~seed:0 ~figures:true [ Core.Registry.task entry ] with
   | [ Ok (a : Engine.Artifact.t) ] ->
     check_true "figure rendered" (List.length a.figures = 1)
   | _ -> Alcotest.fail "fig14 failed");
  check_int "fig14 data generated exactly once"
    (before + 1)
    (Core.Cache.generation_count_of key)

let suite =
  ( "engine",
    [
      tc "pool ordering" test_pool_ordering;
      tc "pool seq = par" test_pool_sequential_matches_parallel;
      tc "pool exception isolation" test_pool_exception_isolation;
      tc "rng stream derivation" test_rng_derivation;
      tc "task buffers + figures" test_task_buffers_and_figures;
      tc "cli defaults" test_cli_defaults;
      tc "cli flags" test_cli_flags;
      tc "cli rejects garbage" test_cli_rejects_garbage;
      tc "registry index" test_registry_index;
      tc "cache concurrent hits" test_cache_concurrent_hits;
      tc "cache unknown key" test_cache_unknown_key;
      tc "memo single generation" test_memo_single_generation;
      tc "memo failed thunk retries" test_memo_failed_thunk_retries;
      tc "par determinism across budgets" test_par_determinism;
      tc "par rng streams" test_par_rng_streams;
      tc "par first exception" test_par_first_exception;
      tc "pool lends and restores the par budget" test_pool_budget_restore;
      tc "telemetry off is inert" test_telemetry_off_is_inert;
      tc "telemetry span nesting + attribution" test_telemetry_span_nesting;
      tc "telemetry task label crosses par domains"
        test_telemetry_task_inherited_by_par;
      tc "telemetry counters + reset" test_telemetry_counters_and_reset;
      tc "telemetry task metrics honour the cursor"
        test_telemetry_task_metrics_since;
      tc "telemetry chrome trace is valid json" test_telemetry_chrome_trace;
      tc "telemetry does not perturb artifacts"
        test_telemetry_non_perturbation;
      tc "artifact metrics attach and persist" test_artifact_metrics;
      tc "figure determinism across jobs" test_figure_determinism;
      tc "fig data generated once per run" test_fig_data_generated_once;
      Alcotest.test_case "full-registry determinism jobs 4 = jobs 1" `Slow
        test_parallel_determinism;
    ] )

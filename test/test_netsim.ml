(* PR 10: the zero-alloc queueing fast path — the shared index heap,
   the SoA superposition engine, the multi-link network simulator, and
   the replica-sharded netsim driver. *)

open Helpers

let bits = Int64.bits_of_float
let check_float_exact name a b = check_true name (bits a = bits b)

let wanpoisson_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/wanpoisson.exe"

(* ---------------- Traffic.Fheap ---------------- *)

let test_fheap_sorted_drain () =
  let r = rng ~seed:31 () in
  for _ = 1 to 10 do
    let n = 1 + Prng.Rng.int r 1000 in
    let keys = Array.init n (fun _ -> Prng.Rng.float r *. 1e6) in
    let h = Traffic.Fheap.create () in
    Array.iteri (fun i k -> Traffic.Fheap.push h k i) keys;
    check_int "size" n (Traffic.Fheap.size h);
    let out = ref [] in
    while not (Traffic.Fheap.is_empty h) do
      let k = Traffic.Fheap.min_key h in
      let v = Traffic.Fheap.min_val h in
      check_float_exact "val matches key" keys.(v) k;
      out := k :: !out;
      Traffic.Fheap.pop_min h
    done;
    let drained = Array.of_list (List.rev !out) in
    let sorted = Array.copy keys in
    Array.sort compare sorted;
    check_true "drain is the sorted multiset" (drained = sorted)
  done

let test_fheap_replace_min () =
  (* replace_min must behave exactly like pop_min + push against a
     sorted-list model. *)
  let r = rng ~seed:32 () in
  let h = Traffic.Fheap.create ~cap:4 () in
  let model = ref [] in
  for i = 1 to 64 do
    let k = Prng.Rng.float r in
    Traffic.Fheap.push h k i;
    model := List.sort compare (k :: !model)
  done;
  for _ = 1 to 500 do
    let k' = Prng.Rng.float r in
    check_float_exact "min tracks model" (List.hd !model)
      (Traffic.Fheap.min_key h);
    Traffic.Fheap.replace_min h k' 0;
    model := List.sort compare (k' :: List.tl !model)
  done;
  check_int "size unchanged" 64 (Traffic.Fheap.size h)

let test_kway_pin () =
  let r = rng ~seed:33 () in
  let arrays =
    Array.init 7 (fun _ ->
        let a = Array.init (Prng.Rng.int r 200) (fun _ -> Prng.Rng.float r) in
        Array.sort compare a;
        a)
  in
  let out = Traffic.Arrival.merge (Array.to_list arrays) in
  let oracle = Array.concat (Array.to_list arrays) in
  Array.sort compare oracle;
  check_true "merge = concat + sort" (out = oracle)

(* ---------------- Traffic.Superpose ---------------- *)

let sp_sources =
  List.init 20 (fun i ->
      Traffic.Onoff.pareto_source ~beta:1.5 ~mean_period:5.
        ~on_rate:(2. +. (0.1 *. float_of_int i)))

let test_superpose_equals_naive () =
  let a =
    Traffic.Superpose.arrivals ~sources:sp_sources ~horizon:200.
      (rng ~seed:41 ())
  in
  let b =
    Traffic.Superpose.arrivals_naive ~sources:sp_sources ~horizon:200.
      (rng ~seed:41 ())
  in
  check_int "same count" (Array.length a) (Array.length b);
  Array.iteri
    (fun i x -> check_true "bit-identical times" (bits x = bits b.(i)))
    a;
  check_true "nonempty" (Array.length a > 1000)

let sp_collect chunk =
  let ts = ref [] and ss = ref [] in
  Traffic.Superpose.iter ~chunk ~sources:sp_sources ~horizon:200.
    (rng ~seed:41 ())
    (fun times srcs len ->
      ts := Array.sub times 0 len :: !ts;
      ss := Array.sub srcs 0 len :: !ss);
  ( Array.concat (List.rev !ts),
    Array.concat (List.rev !ss) )

let test_superpose_chunk_invariant () =
  let t1, s1 = sp_collect 512 in
  let t2, s2 = sp_collect 65536 in
  check_int "same count" (Array.length t1) (Array.length t2);
  check_true "times chunk-invariant"
    (Array.for_all2 (fun a b -> bits a = bits b) t1 t2);
  check_true "sources chunk-invariant" (s1 = s2);
  let mat =
    Traffic.Superpose.arrivals ~sources:sp_sources ~horizon:200.
      (rng ~seed:41 ())
  in
  check_true "iter = arrivals"
    (Array.for_all2 (fun a b -> bits a = bits b) t1 mat)

(* ---------------- Queueing.Network pins ---------------- *)

let poisson_arrivals ~seed ~rate ~duration =
  Traffic.Poisson_proc.homogeneous ~rate ~duration (rng ~seed ())

let push_all ?(chunk = 777) net times srcs =
  let n = Array.length times in
  let pos = ref 0 in
  while !pos < n do
    let len = Int.min chunk (n - !pos) in
    Queueing.Network.push_chunk net ~times ~srcs ~pos:!pos ~len;
    pos := !pos + len
  done;
  Queueing.Network.finish net

let test_network_droptail_equals_fifo () =
  let arrivals = poisson_arrivals ~seed:51 ~rate:100. ~duration:200. in
  let srcs = Array.make (Array.length arrivals) 0 in
  let service_time = 0.008 and buffer = 16 in
  let net =
    Queueing.Network.create ~topology:(Queueing.Network.Tandem 1)
      ~discipline:Queueing.Network.Drop_tail ~buffer
      ~services:[| service_time |] ()
  in
  let stats = (push_all net arrivals srcs).(0) in
  let f = Queueing.Fifo.simulate_const ~buffer ~arrivals ~service_time () in
  let c0 = stats.Queueing.Network.classes.(0) in
  check_int "served" f.Queueing.Fifo.n c0.Queueing.Network.served;
  check_int "dropped" f.Queueing.Fifo.dropped c0.Queueing.Network.dropped;
  check_float_exact "mean wait" f.Queueing.Fifo.mean_wait
    c0.Queueing.Network.mean_wait;
  check_float_exact "max wait" f.Queueing.Fifo.max_wait
    c0.Queueing.Network.max_wait;
  check_float_exact "utilization" f.Queueing.Fifo.utilization
    stats.Queueing.Network.utilization;
  check_true "some drops" (c0.Queueing.Network.dropped > 0)

let test_network_priority_equals_priority () =
  let high = poisson_arrivals ~seed:52 ~rate:60. ~duration:200. in
  let low = poisson_arrivals ~seed:53 ~rate:40. ~duration:200. in
  (* Merge into one (time, src) stream: class = src land 1. *)
  let n = Array.length high + Array.length low in
  let times = Array.make n 0. and srcs = Array.make n 0 in
  let i = ref 0 and j = ref 0 in
  for k = 0 to n - 1 do
    let take_high =
      !j >= Array.length low
      || (!i < Array.length high && high.(!i) <= low.(!j))
    in
    if take_high then begin
      times.(k) <- high.(!i);
      srcs.(k) <- 0;
      incr i
    end
    else begin
      times.(k) <- low.(!j);
      srcs.(k) <- 1;
      incr j
    end
  done;
  let service_high = 0.006 and service_low = 0.009 in
  let net =
    Queueing.Network.create ~topology:(Queueing.Network.Tandem 1)
      ~discipline:Queueing.Network.Priority ~buffer:0
      ~services:[| service_high |] ~services_low:[| service_low |] ()
  in
  let stats = (push_all net times srcs).(0) in
  let p = Queueing.Priority.simulate ~high ~low ~service_high ~service_low in
  let ch = stats.Queueing.Network.classes.(0)
  and cl = stats.Queueing.Network.classes.(1) in
  check_int "high served" p.Queueing.Priority.high.Queueing.Priority.served
    ch.Queueing.Network.served;
  check_float_exact "high mean wait"
    p.Queueing.Priority.high.Queueing.Priority.mean_wait
    ch.Queueing.Network.mean_wait;
  check_float_exact "high max wait"
    p.Queueing.Priority.high.Queueing.Priority.max_wait
    ch.Queueing.Network.max_wait;
  check_int "low served" p.Queueing.Priority.low.Queueing.Priority.served
    cl.Queueing.Network.served;
  check_float_exact "low mean wait"
    p.Queueing.Priority.low.Queueing.Priority.mean_wait
    cl.Queueing.Network.mean_wait;
  check_float_exact "low max wait"
    p.Queueing.Priority.low.Queueing.Priority.max_wait
    cl.Queueing.Network.max_wait

(* ---------------- zero-alloc + RED determinism ---------------- *)

(* The zero-alloc contract, asserted: after warmup, the push loop must
   allocate (asymptotically) nothing per event. The residual budget of
   0.05 minor words/event covers the per-chunk boxed scalar stores. *)
let measure_words_per_event ~topology ~discipline ~buffer =
  let duration = 400. in
  let arrivals = poisson_arrivals ~seed:54 ~rate:500. ~duration in
  let n = Array.length arrivals in
  let srcs = Array.init n (fun i -> i) in
  let net =
    Queueing.Network.create ~topology ~discipline ~buffer
      ~services:
        (Array.make
           (match topology with
           | Queueing.Network.Tandem k -> k
           | Queueing.Network.Fan_in m -> m + 1)
           0.0015)
      ()
  in
  let chunk = 4096 in
  let warm = Int.min n (20 * chunk) in
  let pos = ref 0 in
  while !pos < warm do
    let len = Int.min chunk (warm - !pos) in
    Queueing.Network.push_chunk net ~times:arrivals ~srcs ~pos:!pos ~len;
    pos := !pos + len
  done;
  let w0 = Gc.minor_words () in
  let measured = n - !pos in
  while !pos < n do
    let len = Int.min chunk (n - !pos) in
    Queueing.Network.push_chunk net ~times:arrivals ~srcs ~pos:!pos ~len;
    pos := !pos + len
  done;
  let dw = Gc.minor_words () -. w0 in
  ignore (Queueing.Network.finish net);
  dw /. float_of_int (Int.max 1 measured)

let test_network_zero_alloc_droptail () =
  let w =
    measure_words_per_event ~topology:(Queueing.Network.Tandem 2)
      ~discipline:Queueing.Network.Drop_tail ~buffer:32
  in
  check_true
    (Printf.sprintf "droptail tandem: %.4f minor words/event < 0.05" w)
    (w < 0.05)

let test_network_zero_alloc_red () =
  let w =
    measure_words_per_event ~topology:(Queueing.Network.Fan_in 3)
      ~discipline:(Queueing.Network.Red (Core.Netsim.red_of_buffer 16))
      ~buffer:16
  in
  check_true
    (Printf.sprintf "red fan-in: %.4f minor words/event < 0.05" w)
    (w < 0.05)

let red_stats chunk =
  let arrivals = poisson_arrivals ~seed:55 ~rate:200. ~duration:300. in
  let srcs = Array.init (Array.length arrivals) (fun i -> i) in
  let net =
    Queueing.Network.create ~seed:9
      ~topology:(Queueing.Network.Tandem 1)
      ~discipline:(Queueing.Network.Red (Core.Netsim.red_of_buffer 8))
      ~buffer:8 ~services:[| 0.006 |] ()
  in
  (push_all ~chunk net arrivals srcs).(0)

let test_red_chunk_invariant () =
  (* RED consumes one uniform per ramp decision — a deterministic
     function of the arrival sequence — so the drop SEQUENCE (hash),
     the counts and the waits are chunk-size invariant. *)
  let a = red_stats 64 and b = red_stats 1_000_000 in
  check_int "drop hash" a.Queueing.Network.drop_hash
    b.Queueing.Network.drop_hash;
  Array.iteri
    (fun c (ca : Queueing.Network.class_stats) ->
      let cb = b.Queueing.Network.classes.(c) in
      check_int "served" ca.Queueing.Network.served cb.Queueing.Network.served;
      check_int "dropped" ca.Queueing.Network.dropped
        cb.Queueing.Network.dropped;
      check_float_exact "mean wait" ca.Queueing.Network.mean_wait
        cb.Queueing.Network.mean_wait)
    a.Queueing.Network.classes;
  check_true "red dropped something"
    (a.Queueing.Network.classes.(0).Queueing.Network.dropped
     + a.Queueing.Network.classes.(1).Queueing.Network.dropped
     > 0)

let test_red_drop_prob_monotone () =
  let r = Core.Netsim.red_of_buffer 64 in
  check_float_exact "zero below min_th"
    0. (Queueing.Network.red_drop_prob r (r.Queueing.Network.min_th -. 0.01));
  check_float_exact "one at max_th" 1.
    (Queueing.Network.red_drop_prob r r.Queueing.Network.max_th);
  check_float_exact "one past max_th" 1.
    (Queueing.Network.red_drop_prob r (r.Queueing.Network.max_th +. 5.));
  let prev = ref 0. in
  for i = 0 to 700 do
    let avg = 0.1 *. float_of_int i in
    let p = Queueing.Network.red_drop_prob r avg in
    check_true "monotone in avg" (p >= !prev);
    check_true "a probability" (p >= 0. && p <= 1.);
    prev := p
  done;
  check_true "ramp stays under max_p below max_th"
    (Queueing.Network.red_drop_prob r (r.Queueing.Network.max_th -. 1e-6)
     <= r.Queueing.Network.max_p +. 1e-9)

(* ---------------- bulk kernels ---------------- *)

let test_sketch_add_slice_equals_add () =
  let r = rng ~seed:61 () in
  let xs =
    Array.init 5000 (fun i ->
        if i land 7 = 0 then 0.
        else (1e-3 +. Prng.Rng.float r) ** -1.5)
  in
  let a = Stats.Quantile_sketch.create () in
  Array.iter (Stats.Quantile_sketch.add a) xs;
  let b = Stats.Quantile_sketch.create () in
  Stats.Quantile_sketch.add_slice b xs 0 1234;
  Stats.Quantile_sketch.add_slice b xs 1234 (5000 - 1234);
  check_true "identical wire form"
    (Stats.Quantile_sketch.to_string a = Stats.Quantile_sketch.to_string b);
  check_int "count" (Stats.Quantile_sketch.count a)
    (Stats.Quantile_sketch.count b);
  check_float_exact "sum" (Stats.Quantile_sketch.sum a)
    (Stats.Quantile_sketch.sum b);
  check_invalid_arg "bad slice" "Quantile_sketch.add_slice" (fun () ->
      Stats.Quantile_sketch.add_slice b xs 4000 2000);
  check_invalid_arg "nan rejected, nothing added" "Quantile_sketch" (fun () ->
      Stats.Quantile_sketch.add_slice b [| 1.; nan; 2. |] 0 3);
  check_int "failed slice added nothing" (Stats.Quantile_sketch.count a)
    (Stats.Quantile_sketch.count b)

let test_rng_fill_float_equals_float () =
  let r1 = Prng.Rng.create 77 in
  let r2 = Prng.Rng.create 77 in
  let n = 1000 in
  let a = Array.init n (fun _ -> Prng.Rng.float r1) in
  let b = Array.make n 0. in
  Prng.Rng.fill_float r2 b 0 n;
  check_true "identical stream"
    (Array.for_all2 (fun x y -> bits x = bits y) a b);
  check_int "draw count advances identically" (Prng.Rng.draw_count r1)
    (Prng.Rng.draw_count r2);
  check_float_exact "streams stay in lockstep" (Prng.Rng.float r1)
    (Prng.Rng.float r2);
  check_invalid_arg "bad slice" "Rng.fill_float" (fun () ->
      Prng.Rng.fill_float r2 b 500 501)

(* ---------------- bounded-memory sinks at 1e7 ---------------- *)

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

let run_sink_1e7 make_sink feed =
  let sink = make_sink () in
  let base = live_words () in
  let peak = ref 0 in
  let chunks = ref 0 in
  Traffic.Poisson_proc.iter_chunks ~rate:1000. ~duration:1e4
    (rng ~seed:71 ())
    (fun times ->
      feed sink times;
      incr chunks;
      if !chunks mod 40 = 0 then peak := Int.max !peak (live_words () - base));
  peak := Int.max !peak (live_words () - base);
  (sink, !peak)

let test_fifo_sink_bounded_memory () =
  (* ~1e7 arrivals streamed through the Lindley sink: peak live growth
     must stay O(queue depth + sketch), far below the ~1e7 words a
     materialized trace would cost. *)
  let served = ref 0 in
  let sink, peak =
    run_sink_1e7
      (fun () ->
        Queueing.Fifo.sink ~service:(fun r -> 0.0005 *. Prng.Rng.float_pos r)
          (rng ~seed:72 ()))
      (fun sink times -> Timeseries.Sink.push sink times)
  in
  let stats = Timeseries.Sink.finish sink in
  served := stats.Queueing.Fifo.n;
  check_true "served ~1e7"
    (!served > 9_900_000 && !served < 10_100_000);
  check_true
    (Printf.sprintf "fifo sink peak live growth %d words < 2e6" peak)
    (peak < 2_000_000)

let test_mgk_sink_bounded_memory () =
  let sink, peak =
    run_sink_1e7
      (fun () ->
        Queueing.Mgk.sink ~k:4
          ~service:(fun r -> 0.002 *. Prng.Rng.float_pos r)
          (rng ~seed:73 ()))
      (fun sink times -> Timeseries.Sink.push sink times)
  in
  let stats = Timeseries.Sink.finish sink in
  check_true "served ~1e7"
    (stats.Queueing.Mgk.served > 9_900_000
     && stats.Queueing.Mgk.served < 10_100_000);
  check_true
    (Printf.sprintf "mgk sink peak live growth %d words < 2e6" peak)
    (peak < 2_000_000)

let test_mgk_sink_equals_simulate () =
  let arrivals = poisson_arrivals ~seed:74 ~rate:100. ~duration:200. in
  let service r = 0.02 *. Prng.Rng.float_pos r in
  let a =
    Queueing.Mgk.simulate ~k:3 ~arrivals ~service (rng ~seed:75 ())
  in
  let sink = Queueing.Mgk.sink ~k:3 ~service (rng ~seed:75 ()) in
  let pos = ref 0 in
  while !pos < Array.length arrivals do
    let len = Int.min 997 (Array.length arrivals - !pos) in
    Timeseries.Sink.push_slice sink arrivals !pos len;
    pos := !pos + len
  done;
  let b = Timeseries.Sink.finish sink in
  check_int "served" a.Queueing.Mgk.served b.Queueing.Mgk.served;
  check_float_exact "mean wait" a.Queueing.Mgk.mean_wait
    b.Queueing.Mgk.mean_wait;
  check_float_exact "max wait" a.Queueing.Mgk.max_wait
    b.Queueing.Mgk.max_wait;
  check_float_exact "mean in system" a.Queueing.Mgk.mean_in_system
    b.Queueing.Mgk.mean_in_system

(* ---------------- Core.Netsim ---------------- *)

let small_nspec =
  {
    Core.Netsim.default with
    events = 2e4;
    replicas = 3;
    sources = 8;
    topology = "fanin:2";
    discipline = "red";
    buffer = 8;
    chunk = 1024;
    seed = 7;
  }

let render spec r =
  Format.asprintf "%a" (fun fmt r -> Core.Netsim.pp fmt spec r) r

let test_netsim_spec_validation () =
  let bad f = { small_nspec with workers = 1 } |> f in
  check_invalid_arg "bad model" "netsim" (fun () ->
      Core.Netsim.plan (bad (fun s -> { s with Core.Netsim.model = "mginf" })));
  check_invalid_arg "bad topology" "netsim" (fun () ->
      Core.Netsim.plan
        (bad (fun s -> { s with Core.Netsim.topology = "tandem:9" })));
  check_invalid_arg "bad discipline" "netsim" (fun () ->
      Core.Netsim.plan
        (bad (fun s -> { s with Core.Netsim.discipline = "codel" })));
  check_invalid_arg "red needs a buffer" "netsim" (fun () ->
      Core.Netsim.plan (bad (fun s -> { s with Core.Netsim.buffer = 0 })));
  check_invalid_arg "bad replicas" "netsim" (fun () ->
      Core.Netsim.plan (bad (fun s -> { s with Core.Netsim.replicas = 0 })));
  check_invalid_arg "bad load" "netsim" (fun () ->
      Core.Netsim.plan (bad (fun s -> { s with Core.Netsim.load = 0. })));
  let p = Core.Netsim.plan small_nspec in
  check_int "fanin:2 has 3 links" 3 p.Core.Netsim.n_links

let test_netsim_inline_deterministic () =
  let a = render small_nspec (Core.Netsim.run_inline small_nspec) in
  let b = render small_nspec (Core.Netsim.run_inline small_nspec) in
  check_true "two inline runs byte-identical" (a = b);
  check_true "nonempty report" (String.length a > 100);
  let shifted = { small_nspec with Core.Netsim.seed = 8 } in
  let c = render shifted (Core.Netsim.run_inline shifted) in
  check_true "seed changes the report" (a <> c)

let test_netsim_process_equals_inline () =
  let inline = render small_nspec (Core.Netsim.run_inline small_nspec) in
  List.iter
    (fun workers ->
      let spec = { small_nspec with Core.Netsim.workers } in
      match Core.Netsim.run ~exe:wanpoisson_exe spec with
      | Error e -> Alcotest.failf "workers=%d: %s" workers e
      | Ok r ->
        check_true
          (Printf.sprintf "workers=%d report = inline" workers)
          (render small_nspec r = inline))
    [ 1; 2; 5 ]

let suite =
  ( "netsim",
    [
      tc "fheap: drain is sorted" test_fheap_sorted_drain;
      tc "fheap: replace_min = pop + push" test_fheap_replace_min;
      tc "kway merge pinned to concat + sort" test_kway_pin;
      tc "superpose = naive merge, bit for bit" test_superpose_equals_naive;
      tc "superpose chunk-invariant" test_superpose_chunk_invariant;
      tc "network droptail = Fifo.simulate_const"
        test_network_droptail_equals_fifo;
      tc "network priority = Priority.simulate"
        test_network_priority_equals_priority;
      tc "network push loop allocation-free (droptail)"
        test_network_zero_alloc_droptail;
      tc "network push loop allocation-free (red)"
        test_network_zero_alloc_red;
      tc "red drop sequence chunk-invariant" test_red_chunk_invariant;
      tc "red drop probability monotone" test_red_drop_prob_monotone;
      tc "sketch add_slice = repeated add" test_sketch_add_slice_equals_add;
      tc "rng fill_float = repeated float" test_rng_fill_float_equals_float;
      tc "fifo sink: 1e7 arrivals in bounded memory"
        test_fifo_sink_bounded_memory;
      tc "mgk sink: 1e7 arrivals in bounded memory"
        test_mgk_sink_bounded_memory;
      tc "mgk sink = simulate, bit for bit" test_mgk_sink_equals_simulate;
      tc "netsim spec validation" test_netsim_spec_validation;
      tc "netsim run_inline deterministic" test_netsim_inline_deterministic;
      tc "netsim processes = inline (workers 1/2/5)"
        test_netsim_process_equals_inline;
    ] )

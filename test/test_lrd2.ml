(* Tests for the LRD extensions: fARIMA, wavelet estimator, the shared
   circulant-embedding generator. *)
open Helpers
open Lrd

(* ---------------- Gaussian process generator ---------------- *)

let test_gp_white_noise () =
  let acvf k = if k = 0 then 1. else 0. in
  let r = rng () in
  let xs = Gaussian_process.generate ~acvf ~n:4096 r in
  check_close "unit variance" ~eps:0.1 1. (Stats.Descriptive.variance xs);
  check_true "uncorrelated"
    (Float.abs (Stats.Descriptive.autocorrelation xs 1) < 0.05)

let test_gp_matches_fgn () =
  (* Fgn.generate is a thin wrapper; same acvf + same rng stream must
     give the same samples. *)
  let h = 0.8 in
  let a = Fgn.generate ~h ~n:1024 (rng ()) in
  let b =
    Gaussian_process.generate
      ~acvf:(Fgn.autocovariance ~h ~sigma2:1.)
      ~n:1024 (rng ())
  in
  Alcotest.(check (array (float 1e-12))) "identical" a b

let test_gp_rejects_bad_embedding () =
  (* A strongly oscillating "covariance" that is not nonneg definite. *)
  let acvf k = if k = 0 then 1. else -0.9 in
  Alcotest.check_raises "invalid embedding"
    (Invalid_argument "Gaussian_process.generate: embedding not nonneg definite")
    (fun () -> ignore (Gaussian_process.generate ~acvf ~n:64 (rng ())))

(* ---------------- fARIMA ---------------- *)

let test_farima_acvf_k0 () =
  (* gamma(0) = Gamma(1-2d) / Gamma(1-d)^2. *)
  let d = 0.3 in
  let lg = Dist.Special.log_gamma in
  let expected = exp (lg (1. -. (2. *. d)) -. (2. *. lg (1. -. d))) in
  check_close "variance" ~eps:1e-9 expected (Farima.autocovariance ~d ~sigma2:1. 0)

let test_farima_acvf_decay () =
  let d = 0.25 in
  let g k = Farima.autocovariance ~d ~sigma2:1. k in
  check_true "positive correlations" (g 1 > 0. && g 10 > 0.);
  check_true "decreasing" (g 1 > g 2 && g 2 > g 10);
  (* Hyperbolic decay: gamma(k) ~ k^(2d-1), so gamma(2k)/gamma(k) ->
     2^(2d-1). *)
  let ratio = g 512 /. g 256 in
  check_close "hyperbolic tail" ~eps:0.01 (2. ** ((2. *. d) -. 1.)) ratio

let test_farima_generate_moments () =
  let d = 0.3 in
  let xs = Farima.generate ~d ~n:8192 (rng ()) in
  check_close "mean" ~eps:0.15 0. (mean xs);
  check_close "variance matches gamma(0)" ~eps:0.15
    (Farima.autocovariance ~d ~sigma2:1. 0)
    (Stats.Descriptive.variance xs)

let test_farima_whittle_recovers_d () =
  List.iter
    (fun d ->
      let xs =
        Farima.generate ~d ~n:8192 (rng ~seed:(int_of_float (d *. 1e4)) ())
      in
      let est = Farima.whittle_d xs in
      check_close (Printf.sprintf "d=%.2f" d) ~eps:0.04 d est.Whittle.h)
    [ 0.1; 0.25; 0.4 ]

let test_farima_beran_accepts () =
  let accepted =
    acceptance_over_seeds (fun r ->
        let xs = Farima.generate ~d:0.3 ~n:8192 r in
        let est = Farima.whittle_d xs in
        (Farima.beran ~d:est.Whittle.h xs).Beran.consistent)
  in
  check_true (Printf.sprintf "accepts %d/20" accepted) (accepted >= 16)

let test_farima_hurst_of_d () =
  check_close "H = d + 1/2" 0.8 (Farima.hurst_of_d 0.3)

let test_farima_spectral_pole () =
  let f = Farima.spectral_density ~d:0.3 in
  check_true "diverges toward 0" (f 0.001 > f 0.01 && f 0.01 > f 0.1);
  check_close "flat when d -> 0" ~eps:0.02 1.
    (Farima.spectral_density ~d:0.001 0.3
    /. Farima.spectral_density ~d:0.001 2.)

(* ---------------- Wavelet ---------------- *)

let test_wavelet_decompose_structure () =
  let xs = Array.init 256 (fun i -> float_of_int i) in
  let octs = Wavelet.decompose xs in
  check_int "eight octaves" 8 (List.length octs);
  let first = List.hd octs in
  check_int "first octave" 1 first.Wavelet.j;
  check_int "half the coefficients" 128 first.Wavelet.n_coeffs

let test_wavelet_white_noise_flat () =
  let r = rng () in
  let xs = Array.init 8192 (fun _ -> Prng.Rng.float r -. 0.5) in
  let est = Wavelet.estimate xs in
  check_close "H = 0.5 for white noise" ~eps:0.08 0.5 est.Wavelet.h

let test_wavelet_recovers_fgn () =
  List.iter
    (fun h ->
      let est = Wavelet.estimate (fgn_fixture h) in
      check_close (Printf.sprintf "H=%.2f" h) ~eps:0.08 h est.Wavelet.h)
    [ 0.6; 0.75; 0.9 ]

let test_wavelet_non_pow2 () =
  let r = rng () in
  let xs = Array.init 1000 (fun _ -> Prng.Rng.float r) in
  let octs = Wavelet.decompose xs in
  (* No power-of-two truncation: octave j has floor (1000 / 2^j)
     coefficients, down to 3 at octave 9 — 1000,500,...,3. *)
  check_int "nine octaves" 9 (List.length octs);
  List.iteri
    (fun i o ->
      check_int
        (Printf.sprintf "octave %d coefficients" (i + 1))
        (1000 lsr (i + 1))
        o.Wavelet.n_coeffs)
    octs

let suite =
  ( "lrd-extensions",
    [
      tc "gp white noise" test_gp_white_noise;
      tc "gp matches fgn" test_gp_matches_fgn;
      tc "gp rejects bad embedding" test_gp_rejects_bad_embedding;
      tc "farima acvf at 0" test_farima_acvf_k0;
      tc "farima acvf decay" test_farima_acvf_decay;
      tc "farima generation moments" test_farima_generate_moments;
      tc "farima whittle d" test_farima_whittle_recovers_d;
      tc "farima hurst" test_farima_hurst_of_d;
      tc "farima beran accepts" test_farima_beran_accepts;
      tc "farima spectral pole" test_farima_spectral_pole;
      tc "wavelet structure" test_wavelet_decompose_structure;
      tc "wavelet white noise" test_wavelet_white_noise_flat;
      tc "wavelet recovers fGn" test_wavelet_recovers_fgn;
      tc "wavelet non-pow2 octaves" test_wavelet_non_pow2;
    ] )

open Helpers
open Stats

let data = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]

let test_mean_variance () =
  check_close "mean" 5. (Descriptive.mean data);
  check_close "population variance" 4. (Descriptive.variance data);
  check_close "std" 2. (Descriptive.std data);
  check_close "unbiased variance" (32. /. 7.) (Descriptive.variance_unbiased data)

let test_geometric_mean () =
  check_close "gmean of powers of 2" 4.
    (Descriptive.geometric_mean [| 2.; 4.; 8. |]);
  check_close "gmean single" 7. (Descriptive.geometric_mean [| 7. |])

let test_min_max_median () =
  check_close "min" 2. (Descriptive.minimum data);
  check_close "max" 9. (Descriptive.maximum data);
  check_close "median" 4.5 (Descriptive.median data)

let test_quantiles () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_close "q0" 1. (Descriptive.quantile xs 0.);
  check_close "q1" 5. (Descriptive.quantile xs 1.);
  check_close "q0.5" 3. (Descriptive.quantile xs 0.5);
  check_close "q0.25 interpolated" 2. (Descriptive.quantile xs 0.25);
  check_close "q0.1 interpolated" 1.4 (Descriptive.quantile xs 0.1);
  (* Unsorted input must give the same answer. *)
  check_close "unsorted input" 3. (Descriptive.quantile [| 5.; 1.; 3.; 2.; 4. |] 0.5)

let test_autocorrelation () =
  (* Alternating series has lag-1 autocorrelation -1 (population). *)
  let alt = Array.init 100 (fun i -> if i mod 2 = 0 then 1. else -1.) in
  check_close "lag0 is 1" 1. (Descriptive.autocorrelation alt 0);
  check_close "alternating lag1" ~eps:0.03 (-1.) (Descriptive.autocorrelation alt 1);
  let const = Array.make 10 3. in
  check_close "constant series returns 0" 0. (Descriptive.autocorrelation const 1)

let test_autocorrelations_iid () =
  let r = rng () in
  let xs = Array.init 5000 (fun _ -> Prng.Rng.float r) in
  let acf = Descriptive.autocorrelations xs 5 in
  check_close "lag0" 1. acf.(0);
  for k = 1 to 5 do
    check_true
      (Printf.sprintf "iid lag %d small" k)
      (Float.abs acf.(k) < 0.05)
  done

let test_diffs () =
  Alcotest.(check (array (float 1e-12)))
    "diffs" [| 1.; 2.; -3. |]
    (Descriptive.diffs [| 0.; 1.; 3.; 0. |])

let test_summary_string () =
  let s = Descriptive.summary data in
  check_true "mentions n" (String.length s > 0 && String.sub s 0 2 = "n=")

(* ---------------- Histogram ---------------- *)

let test_histogram_linear () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  Histogram.add_all h [| 0.; 1.9; 2.; 9.99; -1.; 10.; 100. |];
  check_int "bin 0" 2 (Histogram.count h 0);
  check_int "bin 1" 1 (Histogram.count h 1);
  check_int "bin 4" 1 (Histogram.count h 4);
  check_int "underflow" 1 (Histogram.underflow h);
  check_int "overflow" 2 (Histogram.overflow h);
  check_int "total includes outliers" 7 (Histogram.total h);
  check_close "bin edges" 2. (Histogram.bin_lo h 1);
  check_close "bin mid" 3. (Histogram.bin_mid h 1)

let test_histogram_log () =
  let h = Histogram.create_log ~lo:1. ~hi:1000. ~bins:3 in
  Histogram.add_all h [| 1.; 5.; 50.; 500.; 0.5; 0. |];
  check_int "decade 1" 2 (Histogram.count h 0);
  check_int "decade 2" 1 (Histogram.count h 1);
  check_int "decade 3" 1 (Histogram.count h 2);
  check_int "underflow includes nonpositive" 2 (Histogram.underflow h);
  check_close "log bin edge" 10. (Histogram.bin_lo h 1);
  check_close "log bin mid is geometric" (sqrt 1000.) (Histogram.bin_mid h 1)

let test_histogram_density () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:2 in
  Histogram.add_all h [| 0.1; 0.2; 0.3; 0.8 |];
  check_close "density integrates to 1"
    1.
    ((Histogram.density h 0 +. Histogram.density h 1) *. 0.5)

let test_ecdf_grid () =
  let pts = Histogram.ecdf_grid [| 1.; 2.; 3. |] [| 0.; 1.; 2.5; 5. |] in
  Alcotest.(check (array (pair (float 1e-12) (float 1e-12))))
    "ecdf values"
    [| (0., 0.); (1., 1. /. 3.); (2.5, 2. /. 3.); (5., 1.) |]
    pts

(* ---------------- Regression ---------------- *)

let test_ols_exact_line () =
  let pts = Array.init 10 (fun i ->
      let x = float_of_int i in
      (x, (2.5 *. x) -. 1.)) in
  let fit = Regression.ols pts in
  check_close "slope" 2.5 fit.Regression.slope;
  check_close "intercept" (-1.) fit.Regression.intercept;
  check_close "r2" 1. fit.Regression.r2;
  check_close "stderr" ~eps:1e-9 0. fit.Regression.stderr_slope

let test_ols_noisy () =
  let r = rng () in
  let pts =
    Array.init 2000 (fun i ->
        let x = float_of_int i /. 100. in
        (x, (3. *. x) +. 1. +. (Prng.Rng.float r -. 0.5)))
  in
  let fit = Regression.ols pts in
  check_close "slope recovered" ~eps:0.02 3. fit.Regression.slope;
  check_true "stderr positive" (fit.Regression.stderr_slope > 0.);
  check_true "r2 high" (fit.Regression.r2 > 0.99)

let test_ols_arrays () =
  let fit = Regression.ols_arrays [| 0.; 1.; 2. |] [| 1.; 3.; 5. |] in
  check_close "slope" 2. fit.Regression.slope

(* ---------------- Fit ---------------- *)

let test_exponential_mle () =
  let e = Fit.exponential_mle [| 1.; 2.; 3. |] in
  check_close "mean" 2. (Dist.Exponential.mean e)

let test_pareto_mle_recovers_shape () =
  let p = Dist.Pareto.create ~location:1. ~shape:1.3 in
  let xs = samples 100_000 (Dist.Pareto.sample p) in
  let fitted = Fit.pareto_mle xs in
  check_close "location = min" (Stats.Descriptive.minimum xs)
    (Dist.Pareto.location fitted);
  check_close "shape recovered" ~eps:0.03 1.3 (Dist.Pareto.shape fitted)

let test_pareto_mle_degenerate () =
  let fitted = Fit.pareto_mle [| 2.; 2.; 2. |] in
  check_true "degenerate sample gives very light tail"
    (Dist.Pareto.shape fitted >= 1e5)

let test_hill_on_pareto () =
  let p = Dist.Pareto.create ~location:1. ~shape:1.1 in
  let xs = samples 100_000 (Dist.Pareto.sample p) in
  let h = Fit.hill xs ~k:5000 in
  check_close "hill estimates shape" ~eps:0.08 1.1 h

let test_lognormal_mle () =
  let ln = Dist.Lognormal.create ~mu:1.2 ~sigma:0.7 in
  let xs = samples 100_000 (Dist.Lognormal.sample ln) in
  let fitted = Fit.lognormal_mle xs in
  check_close "mu" ~eps:0.02 1.2 (Dist.Lognormal.mu fitted);
  check_close "sigma" ~eps:0.02 0.7 (Dist.Lognormal.sigma fitted)

let test_normal_mle () =
  let n = Dist.Normal.create ~mu:4. ~sigma:3. in
  let xs = samples 100_000 (Dist.Normal.sample n) in
  let fitted = Fit.normal_mle xs in
  check_close "mu" ~eps:0.05 4. (Dist.Normal.mu fitted);
  check_close "sigma" ~eps:0.05 3. (Dist.Normal.sigma fitted)

let test_log_extreme_moments () =
  let le = Dist.Log_extreme.create ~alpha:5. ~beta:2. in
  let xs = samples 100_000 (Dist.Log_extreme.sample le) in
  let fitted = Fit.log_extreme_moments xs in
  check_close "alpha" ~eps:0.1 5. (Dist.Log_extreme.alpha fitted);
  check_close "beta" ~eps:0.1 2. (Dist.Log_extreme.beta fitted)

let test_cmex_empirical () =
  let xs = [| 1.; 2.; 3.; 10. |] in
  check_close "cmex at 2.5" ((0.5 +. 7.5) /. 2.) (Fit.cmex xs 2.5);
  check_true "cmex beyond max is nan" (Float.is_nan (Fit.cmex xs 11.))

let test_tail_mass () =
  let xs = [| 1.; 1.; 1.; 97. |] in
  check_close "top 25% holds 97%" 0.97 (Fit.tail_mass xs ~top_fraction:0.25);
  check_close "top 100% holds all" 1. (Fit.tail_mass xs ~top_fraction:1.);
  (* Minimum one sample is always counted. *)
  check_close "tiny fraction keeps largest" 0.97
    (Fit.tail_mass xs ~top_fraction:0.001)

let test_concentration_curve () =
  let xs = Array.init 1000 (fun i -> float_of_int (i + 1)) in
  let curve = Fit.concentration_curve xs ~points:10 in
  check_int "points" 10 (Array.length curve);
  let _, last = curve.(9) in
  let _, first = curve.(0) in
  check_true "monotone" (last >= first);
  let pct, share = curve.(9) in
  check_close "x axis ends at 10%" 10. pct;
  (* Top 10% of 1..1000 holds sum(901..1000)/sum(1..1000). *)
  check_close "top decile share" ~eps:0.2
    (100. *. 95050. /. 500500.)
    share

let test_cusum_detects_shift () =
  (* Fixed target: a level shift of 0.3 against drift 0.05 accumulates
     0.25 per observation and must alarm on the 2nd post-shift point;
     observations inside the slack never alarm. *)
  let c = Stats.Cusum.create ~target:0.5 ~drift:0.05 ~threshold:0.4 () in
  for _ = 1 to 50 do
    match Stats.Cusum.observe c 0.52 with
    | None -> ()
    | Some _ -> Alcotest.fail "alarm inside the slack band"
  done;
  (match Stats.Cusum.observe c 0.8 with
  | Some _ -> Alcotest.fail "alarm after one observation (threshold 0.4)"
  | None -> ());
  (match Stats.Cusum.observe c 0.8 with
  | None -> Alcotest.fail "no alarm after sustained +0.3 shift"
  | Some a ->
    (match a.Stats.Cusum.side with
    | Stats.Cusum.Up -> ()
    | Stats.Cusum.Down -> Alcotest.fail "wrong side");
    Alcotest.check (Alcotest.float 1e-9) "stat" 0.5 a.Stats.Cusum.stat);
  (* Self-calibration: warmup mean becomes the target; NaN skipped;
     recalibrate adopts the new regime. *)
  let d = Stats.Cusum.create ~drift:0.05 ~threshold:0.4 ~warmup:4 () in
  (match Stats.Cusum.observe d nan with
  | None -> ()
  | Some _ -> Alcotest.fail "alarm on nan");
  List.iter (fun x -> ignore (Stats.Cusum.observe d x)) [ 0.4; 0.6; 0.5; 0.5 ];
  (match Stats.Cusum.target d with
  | Some t -> Alcotest.check (Alcotest.float 1e-9) "calibrated" 0.5 t
  | None -> Alcotest.fail "no target after warmup");
  ignore (Stats.Cusum.observe d 0.9);
  (match Stats.Cusum.observe d 0.9 with
  | None -> Alcotest.fail "no alarm after calibration"
  | Some _ -> ());
  Stats.Cusum.recalibrate d;
  (match Stats.Cusum.target d with
  | None -> ()
  | Some _ -> Alcotest.fail "target survived recalibrate");
  List.iter (fun x -> ignore (Stats.Cusum.observe d x)) [ 0.9; 0.9; 0.9; 0.9 ];
  for _ = 1 to 20 do
    match Stats.Cusum.observe d 0.9 with
    | None -> ()
    | Some _ -> Alcotest.fail "alarm in the adopted regime"
  done

let suite =
  ( "stats",
    [
      tc "mean/variance" test_mean_variance;
      tc "geometric mean" test_geometric_mean;
      tc "min/max/median" test_min_max_median;
      tc "quantiles" test_quantiles;
      tc "autocorrelation" test_autocorrelation;
      tc "iid autocorrelations small" test_autocorrelations_iid;
      tc "diffs" test_diffs;
      tc "summary string" test_summary_string;
      tc "histogram linear" test_histogram_linear;
      tc "histogram log" test_histogram_log;
      tc "histogram density" test_histogram_density;
      tc "ecdf grid" test_ecdf_grid;
      tc "ols exact line" test_ols_exact_line;
      tc "ols noisy" test_ols_noisy;
      tc "ols arrays" test_ols_arrays;
      tc "exponential mle" test_exponential_mle;
      tc "pareto mle" test_pareto_mle_recovers_shape;
      tc "pareto mle degenerate" test_pareto_mle_degenerate;
      tc "hill estimator" test_hill_on_pareto;
      tc "lognormal mle" test_lognormal_mle;
      tc "normal mle" test_normal_mle;
      tc "log-extreme moments" test_log_extreme_moments;
      tc "empirical cmex" test_cmex_empirical;
      tc "tail mass" test_tail_mass;
      tc "concentration curve" test_concentration_curve;
      tc "cusum detects shift" test_cusum_detects_shift;
    ] )
